"""Deterministic, seeded fault injection for the three engines.

The injector produces the failure modes the resilience subsystem claims
to survive, so tests can prove every degradation path actually engages:

* **Trace corruption** — rewrite a fraction of records with invalid
  fields (negative addresses, forward/self dependencies, bad cpu ids,
  uid regressions), bypassing :class:`TraceRecord` construction-time
  validation the way a truncated or bit-flipped trace file would.
* **Dropped dependencies** — silently remove producer records from the
  stream, leaving consumers pointing at uids that never complete.
* **Power-map perturbation** — inject NaN spikes or power dropouts into
  power arrays to trip the power-map guard (densities are clamped at
  zero: a faulty sensor reads nothing, never negative watts).
* **Bit flips** — flip individual bits in byte buffers, files, or numpy
  arrays to model storage/memory corruption of checkpoints, journal
  lines, and cached operators; the integrity layer must detect every
  one.
* **Forced solver failures** — a stage budget consulted by the fallback
  ladder in :mod:`repro.resilience.policy`, so "LU failed" can be
  simulated without manufacturing a singular matrix.
* **Worker faults** — chaos directives for the campaign runner
  (:mod:`repro.runner`): crash a worker process, hang it past its
  wall-clock budget, stall its heartbeat, or corrupt its result file,
  deterministically per ``(seed, task, attempt)``.
* **Executor faults** — backend-level chaos for the lease-based
  scheduler: crash a whole executor (node process) with claimed work,
  partition its control socket, stall its lease renewals, or deliver a
  task twice, so failover (lease reclaim, work stealing, duplicate-
  completion idempotence) is provable under test.
* **Service faults** — chaos for the HTTP job service
  (:mod:`repro.service`): slow clients, request floods, corrupted
  cached results, and backend partitions, so admission control, the
  circuit breaker, and the verify-before-serve path are provable end
  to end.

Every draw is **site-addressed**: the RNG for one decision is
``random.Random(f"{seed}:{site}:{occurrence}")`` — seeded from the
injector seed, the decision site's name, and how many times that site
has been consulted — never a shared stream.  Two sites cannot perturb
each other's draws, so injecting (or removing) one fault leaves every
other decision identical.  That stability is what makes deterministic-
simulation schedules (:mod:`repro.dst`) shrinkable: dropping an event
from a fault schedule does not reshuffle the faults that remain.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, Optional

import numpy as np

from repro.traces.record import AccessType, NO_DEP, TraceRecord

#: Corruption modes :meth:`FaultInjector.corrupt_record` cycles through.
CORRUPTION_MODES = (
    "negative-address",
    "forward-dep",
    "self-dep",
    "bad-cpu",
    "uid-regression",
)

#: Worker misbehaviors :meth:`FaultInjector.worker_fault` can direct
#: (interpreted by ``repro.runner.worker``).  ``flip-operator`` arms a
#: one-shot bit flip in a cached thermal-operator array, modelling
#: silent in-memory corruption the oracle layer must catch.
WORKER_FAULT_MODES = ("crash", "hang", "stall", "corrupt-result", "flip-operator")

#: Executor (backend-level) misbehaviors
#: :meth:`FaultInjector.executor_fault` can direct, interpreted by the
#: executor backends: ``executor-crash`` kills a whole executor with its
#: claimed-and-completed work unreported; ``partition`` blackholes its
#: control channel both ways until it heals; ``lease-stall`` stops its
#: lease renewals while work keeps finishing.  (``duplicate-delivery``
#: is scheduler-side — see :meth:`FaultInjector.duplicate_delivery` —
#: because retransmitting an assignment needs no executor cooperation.)
EXECUTOR_FAULT_MODES = ("executor-crash", "partition", "lease-stall")

#: Service-level misbehaviors :meth:`FaultInjector.service_fault` can
#: direct, interpreted by :mod:`repro.service`: ``slow-client`` treats a
#: connection as a header-dribbler (408 and close); ``request-flood``
#: amplifies a request's rate-limit token cost so the limiter sheds
#: deterministically under test; ``corrupt-cached-result`` flips bits in
#: a just-stored result-cache artifact so the verify-before-serve path
#: must quarantine and re-run it; ``backend-partition`` makes the
#: dispatcher record a synthetic executor loss instead of submitting,
#: driving the circuit breaker open.
SERVICE_FAULT_MODES = (
    "slow-client",
    "request-flood",
    "corrupt-cached-result",
    "backend-partition",
)


def make_raw_record(
    uid: int,
    cpu: int,
    kind: AccessType,
    address: int,
    ip: int,
    dep_uid: int = NO_DEP,
) -> TraceRecord:
    """Build a TraceRecord bypassing ``__post_init__`` validation.

    Only for fault injection and tests: this is how invalid records
    "from disk" are modeled now that construction validates eagerly.
    """
    record = object.__new__(TraceRecord)
    object.__setattr__(record, "uid", uid)
    object.__setattr__(record, "cpu", cpu)
    object.__setattr__(record, "kind", kind)
    object.__setattr__(record, "address", address)
    object.__setattr__(record, "ip", ip)
    object.__setattr__(record, "dep_uid", dep_uid)
    return record


class FaultInjector:
    """Seeded source of deterministic simulator faults.

    Args:
        seed: RNG seed; identical seeds inject identical faults.
        record_corruption_rate: Probability of corrupting each record in
            :meth:`corrupt_trace`.
        dependency_drop_rate: Probability of dropping each *load* record
            in :meth:`drop_producers`.
        power_fault_rate: Probability of perturbing each element in
            :meth:`perturb_power`.
        forced_failures: Map of ladder stage name (``"lu"``, ``"cg"``,
            ``"coarse"``, ``"transient"``) to how many times that stage
            must fail; -1 means fail every time.  Worker faults use
            stage names ``"worker-<mode>"`` (any task) or
            ``"worker-<mode>:<task_id>"`` (one task), with mode from
            :data:`WORKER_FAULT_MODES`.
        worker_fault_rates: Map of mode -> probability that a worker
            attempt suffers that fault (modes from
            :data:`WORKER_FAULT_MODES`); the draw is deterministic per
            ``(seed, task_id, attempt)``.
    """

    def __init__(
        self,
        seed: int = 0,
        record_corruption_rate: float = 0.0,
        dependency_drop_rate: float = 0.0,
        power_fault_rate: float = 0.0,
        forced_failures: Optional[Dict[str, int]] = None,
        worker_fault_rates: Optional[Dict[str, float]] = None,
    ) -> None:
        for name, rate in (
            ("record_corruption_rate", record_corruption_rate),
            ("dependency_drop_rate", dependency_drop_rate),
            ("power_fault_rate", power_fault_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for mode, rate in (worker_fault_rates or {}).items():
            if mode not in WORKER_FAULT_MODES:
                raise ValueError(
                    f"unknown worker fault mode {mode!r}; "
                    f"known: {WORKER_FAULT_MODES}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"worker fault rate for {mode!r} must be in [0, 1], "
                    f"got {rate}"
                )
        self.seed = seed
        #: Per-site occurrence counters backing :meth:`_site_rng`.
        self._site_counts: Dict[str, int] = {}
        self.record_corruption_rate = record_corruption_rate
        self.dependency_drop_rate = dependency_drop_rate
        self.power_fault_rate = power_fault_rate
        self.forced_failures = dict(forced_failures or {})
        self.worker_fault_rates = dict(worker_fault_rates or {})
        self.injected: Dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------------

    def _note(self, what: str) -> None:
        self.injected[what] = self.injected.get(what, 0) + 1

    def _site_rng(self, site: str) -> random.Random:
        """Fresh RNG for one decision at *site*.

        Derived from ``(seed, site, occurrence)`` — string seeds hash
        through SHA-512, so the stream is stable across processes and
        ``PYTHONHASHSEED`` values.  Because each site counts its own
        occurrences, draws at one site can never shift the draws at
        another: fault schedules stay stable under insertion/removal,
        which is what lets the DST shrinker converge.
        """
        occurrence = self._site_counts.get(site, 0)
        self._site_counts[site] = occurrence + 1
        return random.Random(f"{self.seed}:{site}:{occurrence}")

    # -- forced solver failures ----------------------------------------------

    def should_fail(self, stage: str) -> bool:
        """Consume one forced failure for *stage*, if any remain."""
        remaining = self.forced_failures.get(stage, 0)
        if remaining == 0:
            return False
        if remaining > 0:
            self.forced_failures[stage] = remaining - 1
        self._note(f"forced:{stage}")
        return True

    # -- worker faults -------------------------------------------------------

    def worker_fault(self, task_id: str, attempt: int) -> Optional[str]:
        """Chaos directive for one worker attempt, or None.

        Forced failures win (``"worker-crash:figure-6"`` beats
        ``"worker-crash"`` beats the rates); otherwise each mode's rate
        is rolled with an RNG keyed on ``(seed, task_id, attempt)``, so
        the same campaign configuration injects the same faults on every
        run — and a *retry* of the same task rolls fresh, the way a real
        transient fault clears.
        """
        for mode in WORKER_FAULT_MODES:
            if self.should_fail(f"worker-{mode}:{task_id}"):
                return mode
            if self.should_fail(f"worker-{mode}"):
                return mode
        rng = random.Random(f"{self.seed}:{task_id}:{attempt}")
        roll = rng.random()
        cumulative = 0.0
        for mode in WORKER_FAULT_MODES:
            cumulative += self.worker_fault_rates.get(mode, 0.0)
            if roll < cumulative:
                self._note(f"worker:{mode}")
                return mode
        return None

    # -- executor (backend-level) faults -------------------------------------

    def executor_fault(self, executor_id: str) -> Optional[str]:
        """Chaos directive for one executor, or None.

        Consulted by a backend when it brings an executor up (the
        ``nodes:N`` backend passes the directive on the node's command
        line; the inproc backend simulates it).  Budgets come from
        ``forced_failures`` with stage names ``"<mode>"`` (any
        executor) or ``"<mode>:<executor_id>"`` (one executor), mode
        from :data:`EXECUTOR_FAULT_MODES` — so ``{"executor-crash": 1}``
        dooms exactly one executor per campaign, deterministically the
        first to ask.
        """
        for mode in EXECUTOR_FAULT_MODES:
            if self.should_fail(f"{mode}:{executor_id}"):
                return mode
            if self.should_fail(mode):
                return mode
        return None

    # -- service (HTTP job API) faults ----------------------------------------

    def service_fault(self, mode: str, key: str = "") -> bool:
        """Consume one forced service fault of *mode*, if any remain.

        Budgets come from ``forced_failures`` with stage names
        ``"<mode>"`` (any request/fingerprint) or ``"<mode>:<key>"``
        (one client id or task fingerprint), mode from
        :data:`SERVICE_FAULT_MODES` — so ``{"backend-partition": 3}``
        partitions exactly the next three dispatches, after which the
        service heals and the breaker's half-open probe finds it.
        """
        if mode not in SERVICE_FAULT_MODES:
            raise ValueError(
                f"unknown service fault mode {mode!r}; "
                f"known: {SERVICE_FAULT_MODES}"
            )
        if key and self.should_fail(f"{mode}:{key}"):
            return True
        return self.should_fail(mode)

    def duplicate_delivery(self, task_id: str) -> bool:
        """Should this task's assignment be delivered twice?

        Scheduler-side fault: the scheduler submits the same attempt a
        second time, modelling a retransmit on a flaky control plane.
        Budgeted via ``forced_failures`` stage names
        ``"duplicate-delivery"`` / ``"duplicate-delivery:<task_id>"``.
        """
        return (
            self.should_fail(f"duplicate-delivery:{task_id}")
            or self.should_fail("duplicate-delivery")
        )

    # -- trace faults --------------------------------------------------------

    def corrupt_record(self, record: TraceRecord) -> TraceRecord:
        """Return a corrupted copy of *record* (random corruption mode)."""
        rng = self._site_rng("corrupt-record")
        mode = rng.choice(CORRUPTION_MODES)
        self._note(f"corrupt:{mode}")
        uid, cpu, addr, dep = record.uid, record.cpu, record.address, record.dep_uid
        if mode == "negative-address":
            addr = -abs(record.address) - 1
        elif mode == "forward-dep":
            dep = record.uid + rng.randint(1, 1000)
        elif mode == "self-dep":
            dep = record.uid
        elif mode == "bad-cpu":
            cpu = -1 if rng.random() < 0.5 else cpu + 4096
        elif mode == "uid-regression":
            uid = -record.uid - 1
        return make_raw_record(uid, cpu, record.kind, addr, record.ip, dep)

    def corrupt_trace(
        self, records: Iterable[TraceRecord]
    ) -> Iterator[TraceRecord]:
        """Yield *records* with a fraction corrupted in place."""
        rate = self.record_corruption_rate
        for record in records:
            if rate and self._site_rng("corrupt-trace").random() < rate:
                yield self.corrupt_record(record)
            else:
                yield record

    def drop_producers(
        self, records: Iterable[TraceRecord]
    ) -> Iterator[TraceRecord]:
        """Yield *records* minus a fraction of loads (dangling deps remain)."""
        rate = self.dependency_drop_rate
        for record in records:
            if (
                rate and record.is_load
                and self._site_rng("drop-producer").random() < rate
            ):
                self._note("dropped-producer")
                continue
            yield record

    # -- thermal faults ------------------------------------------------------

    def perturb_power(self, power: np.ndarray) -> np.ndarray:
        """Copy of *power* with NaN spikes / dropouts injected.

        Faulty power telemetry reads NaN or zero; densities are clamped
        at 0.0 W so the injector never fabricates negative power (which
        would violate the very thermal oracle it exercises).
        """
        out = np.array(power, dtype=float, copy=True)
        flat = out.ravel()
        rate = self.power_fault_rate
        for i in range(flat.size):
            if rate:
                rng = self._site_rng("perturb-power")
                if rng.random() < rate:
                    if rng.random() < 0.5:
                        flat[i] = float("nan")
                        self._note("power:nan")
                    else:
                        flat[i] = max(0.0, flat[i] - abs(flat[i]) - 1.0)
                        self._note("power:dropout")
        return out

    # -- bit flips (storage / memory corruption) -----------------------------

    def flip_bits(self, data: bytes, n_flips: int = 1) -> bytes:
        """Copy of *data* with *n_flips* random single-bit flips."""
        if not data:
            return data
        buf = bytearray(data)
        for _ in range(max(1, n_flips)):
            rng = self._site_rng("flip-bits")
            pos = rng.randrange(len(buf))
            bit = rng.randrange(8)
            buf[pos] ^= 1 << bit
            self._note("bitflip:bytes")
        return bytes(buf)

    def flip_file_bits(
        self,
        path: "str",
        n_flips: int = 1,
        offset_min: int = 0,
    ) -> int:
        """Flip *n_flips* bits in-place in the file at *path*.

        *offset_min* protects a header prefix (e.g. the checkpoint
        magic + envelope) so the flip lands in the payload.  Returns the
        number of bits flipped.
        """
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            if size <= offset_min:
                return 0
            flipped = 0
            for _ in range(max(1, n_flips)):
                rng = self._site_rng("flip-file-bits")
                pos = rng.randrange(offset_min, size)
                handle.seek(pos)
                byte = handle.read(1)[0]
                bit = rng.randrange(8)
                handle.seek(pos)
                handle.write(bytes([byte ^ (1 << bit)]))
                flipped += 1
                self._note("bitflip:file")
            handle.flush()
        return flipped

    def flip_array_bits(self, array: np.ndarray, n_flips: int = 1) -> int:
        """Flip *n_flips* bits in-place in a numpy array's buffer."""
        view = array.view(np.uint8).ravel()
        if view.size == 0:
            return 0
        flipped = 0
        for _ in range(max(1, n_flips)):
            rng = self._site_rng("flip-array-bits")
            pos = rng.randrange(view.size)
            bit = rng.randrange(8)
            view[pos] ^= np.uint8(1 << bit)
            flipped += 1
            self._note("bitflip:array")
        return flipped
