"""Checkpoint files for interruptible simulator runs.

A checkpoint is a pickled envelope ``{magic, version, kind, state}``
written atomically (temp file + rename) so an interruption mid-write
never destroys the previous good checkpoint.  ``kind`` tags which engine
wrote it (``"replay"`` or ``"transient"``); loading with a mismatched
kind, a truncated file, or a foreign format raises
:class:`~repro.resilience.errors.CheckpointError` instead of handing the
engine a garbage state.

Checkpoints are trusted local files produced by the same codebase (they
use :mod:`pickle`); do not load checkpoints from untrusted sources.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Dict, Union

from repro.resilience.errors import CheckpointError

#: Identifies a file as one of ours before unpickling the payload.
MAGIC = b"REPRO-CKPT"
#: Envelope format version; bump on incompatible layout changes.
VERSION = 1

PathLike = Union[str, Path]


def save_checkpoint(kind: str, state: Dict[str, Any], path: PathLike) -> Path:
    """Atomically write *state* as a *kind* checkpoint; returns the path."""
    path = Path(path)
    envelope = {"version": VERSION, "kind": kind, "state": state}
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    return path


def load_checkpoint(path: PathLike, kind: str) -> Dict[str, Any]:
    """Read a checkpoint of the given *kind*; returns its state dict.

    Raises:
        CheckpointError: missing file, foreign/truncated content, wrong
            kind, or incompatible version.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise CheckpointError(
                    f"{path} is not a repro checkpoint (bad magic)"
                )
            try:
                envelope = pickle.load(handle)
            except Exception as exc:  # truncated or corrupt pickle stream
                raise CheckpointError(
                    f"{path} is truncated or corrupt: {exc}"
                ) from exc
    except FileNotFoundError as exc:
        raise CheckpointError(f"checkpoint {path} does not exist") from exc
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(envelope, dict) or "state" not in envelope:
        raise CheckpointError(f"{path} has no state payload")
    if envelope.get("version") != VERSION:
        raise CheckpointError(
            f"{path} has checkpoint version {envelope.get('version')}, "
            f"this build reads version {VERSION}"
        )
    if envelope.get("kind") != kind:
        raise CheckpointError(
            f"{path} is a {envelope.get('kind')!r} checkpoint, "
            f"expected {kind!r}"
        )
    return envelope["state"]
