"""Checkpoint files for interruptible simulator runs.

Version 2 layout (integrity-checked): ``MAGIC`` + a small pickled
envelope ``{version, kind, sha256, nbytes}`` + the pickled state
payload as raw bytes.  The envelope carries the sha256 of the payload,
so a flipped bit anywhere in the state is detected *before* the bytes
reach :mod:`pickle` — loading corrupt state raises
:class:`~repro.resilience.errors.StateIntegrityError` and (on resume
paths) quarantines the file to ``<name>.quarantined`` so the supervisor
can re-run from the last good record instead of ingesting garbage.

Version 1 files (``{version, kind, state}`` in one pickle, no digest)
are still read for backward compatibility; they get the structural
checks but no integrity guarantee.

Writes are atomic (temp file + rename) so an interruption mid-write
never destroys the previous good checkpoint.  Checkpoints are trusted
local files produced by the same codebase (they use :mod:`pickle`); do
not load checkpoints from untrusted sources.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.resilience.errors import CheckpointError, StateIntegrityError

#: Identifies a file as one of ours before unpickling the payload.
MAGIC = b"REPRO-CKPT"
#: Envelope format version; bump on incompatible layout changes.
VERSION = 2
#: Oldest version this build still reads.
MIN_VERSION = 1

PathLike = Union[str, Path]


def save_checkpoint(kind: str, state: Dict[str, Any], path: PathLike) -> Path:
    """Atomically write *state* as a *kind* checkpoint; returns the path."""
    path = Path(path)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "version": VERSION,
        "kind": kind,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "nbytes": len(payload),
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    return path


def _read_envelope(path: Path) -> Tuple[Dict[str, Any], bytes]:
    """Read (envelope, payload bytes); payload is empty for v1 files."""
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise CheckpointError(
                    f"{path} is not a repro checkpoint (bad magic)"
                )
            try:
                envelope = pickle.load(handle)
            except Exception as exc:  # truncated or corrupt pickle stream
                raise CheckpointError(
                    f"{path} is truncated or corrupt: {exc}"
                ) from exc
            payload = handle.read()
    except FileNotFoundError as exc:
        raise CheckpointError(f"checkpoint {path} does not exist") from exc
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(envelope, dict):
        raise CheckpointError(f"{path} has no envelope")
    version = envelope.get("version")
    if not isinstance(version, int) or not (
        MIN_VERSION <= version <= VERSION
    ):
        raise CheckpointError(
            f"{path} has checkpoint version {version}, this build reads "
            f"versions {MIN_VERSION}..{VERSION}"
        )
    return envelope, payload


def quarantine_file(path: PathLike) -> Path:
    """Move a corrupt artifact aside to ``<name>.quarantined``."""
    path = Path(path)
    target = path.with_name(path.name + ".quarantined")
    os.replace(path, target)
    return target


def _integrity_failure(
    path: Path, message: str, quarantine: bool
) -> StateIntegrityError:
    quarantined: Optional[str] = None
    if quarantine:
        try:
            quarantined = str(quarantine_file(path))
            message += f" (quarantined to {quarantined})"
        except OSError:
            quarantined = None
    return StateIntegrityError(message, path=str(path), quarantined=quarantined)


def load_checkpoint(
    path: PathLike, kind: str, quarantine: bool = False
) -> Dict[str, Any]:
    """Read a checkpoint of the given *kind*; returns its state dict.

    Args:
        path: Checkpoint file.
        kind: Expected engine tag (``"replay"``/``"transient"``).
        quarantine: On an integrity failure, move the corrupt file to
            ``<name>.quarantined`` before raising (resume paths set
            this so a retry starts clean).

    Raises:
        CheckpointError: missing file, foreign/truncated content, wrong
            kind, or incompatible version.
        StateIntegrityError: the payload's sha256 does not match its
            envelope (bit-rot or tampering detected).
    """
    path = Path(path)
    envelope, payload = _read_envelope(path)
    if envelope.get("kind") != kind:
        raise CheckpointError(
            f"{path} is a {envelope.get('kind')!r} checkpoint, "
            f"expected {kind!r}"
        )
    if envelope.get("version") == 1:
        if "state" not in envelope:
            raise CheckpointError(f"{path} has no state payload")
        return envelope["state"]
    expected = envelope.get("sha256")
    nbytes = envelope.get("nbytes")
    if nbytes is not None and len(payload) != nbytes:
        raise _integrity_failure(
            path,
            f"{path} is truncated or corrupt: payload is {len(payload)} "
            f"bytes, envelope says {nbytes}",
            quarantine,
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != expected:
        raise _integrity_failure(
            path,
            f"{path} failed its sha256 integrity check "
            f"(stored {expected}, computed {digest})",
            quarantine,
        )
    try:
        state = pickle.loads(payload)
    except Exception as exc:
        raise _integrity_failure(
            path, f"{path} state payload does not unpickle: {exc}", quarantine
        ) from exc
    if not isinstance(state, dict):
        raise CheckpointError(f"{path} has no state payload")
    return state


def verify_checkpoint(path: PathLike) -> Dict[str, Any]:
    """Verify a checkpoint's envelope + digest without applying it.

    Returns a summary dict (``version``, ``kind``, ``nbytes``,
    ``sha256``) on success; raises :class:`CheckpointError` /
    :class:`StateIntegrityError` (never quarantines — ``repro verify``
    is read-only).
    """
    path = Path(path)
    envelope, payload = _read_envelope(path)
    version = envelope.get("version")
    if version == 1:
        if "state" not in envelope:
            raise CheckpointError(f"{path} has no state payload")
        return {
            "path": str(path),
            "version": 1,
            "kind": envelope.get("kind"),
            "nbytes": None,
            "sha256": None,
            "note": "version-1 checkpoint: no integrity envelope",
        }
    expected = envelope.get("sha256")
    nbytes = envelope.get("nbytes")
    if nbytes is not None and len(payload) != nbytes:
        raise StateIntegrityError(
            f"{path} is truncated or corrupt: payload is {len(payload)} "
            f"bytes, envelope says {nbytes}",
            path=str(path),
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != expected:
        raise StateIntegrityError(
            f"{path} failed its sha256 integrity check "
            f"(stored {expected}, computed {digest})",
            path=str(path),
        )
    return {
        "path": str(path),
        "version": version,
        "kind": envelope.get("kind"),
        "nbytes": nbytes,
        "sha256": digest,
    }
