"""Retry/degradation ladders for the thermal engines.

Steady state (:func:`solve_steady_state_resilient`) walks a three-rung
ladder until one rung produces a guarded solution:

1. **Direct LU** — the fast path (identical to
   :func:`repro.thermal.solver.solve_steady_state`).
2. **Preconditioned CG** — Jacobi-preconditioned conjugate gradients on
   the same system; the operator is SPD, so CG converges even where an
   LU factorization hits pathological pivoting.
3. **Coarser grid** — re-discretize at ``nx/coarsen_factor`` and solve
   that; the answer is legitimate physics at lower resolution and is
   flagged ``degraded=True`` so downstream consumers know.

Every rung's output must pass the run guards (finite values, relative
residual below tolerance, plausible temperature bounds) before it is
accepted.  A :class:`~repro.resilience.faults.FaultInjector` can force
individual rungs to fail, which is how tests prove each fallback
actually engages.

The transient integrator gets a **step-halving retry**
(:func:`solve_transient_resilient`): if an integration diverges, it is
re-run with half the time step, up to ``max_halvings`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.resilience.errors import GuardViolation, SolverDivergenceError
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import (
    RESIDUAL_TOL,
    check_finite,
    check_residual,
    check_temperature_bounds,
)
from repro.thermal.solver import (
    DiscreteSystem,
    SolverConfig,
    ThermalSolution,
    assemble_system,
)
from repro.thermal.stack import ThermalStack
from repro.thermal.transient import TransientResult, solve_transient

#: CG iteration cap; the Jacobi-preconditioned FV system converges in a
#: few hundred iterations even at nx=64 — far below this.
_CG_MAXITER = 20_000


@dataclass
class LadderReport:
    """How a resilient solve got its answer.

    Attributes:
        method: Rung that produced the accepted solution (``"lu"``,
            ``"cg"``, ``"lu-coarse"``, ``"cg-coarse"``).
        residual: Relative residual of the accepted solution.
        degraded: True if the answer came from the coarse-grid rung.
        attempts: Human-readable log of every rung tried.
    """

    method: str = ""
    residual: float = float("nan")
    degraded: bool = False
    attempts: List[str] = field(default_factory=list)


def _solve_lu(system: DiscreteSystem) -> np.ndarray:
    try:
        lu = spla.splu(system.matrix, permc_spec="MMD_AT_PLUS_A")
        return lu.solve(system.rhs)
    except RuntimeError as exc:  # singular factorization
        raise SolverDivergenceError(
            f"LU factorization failed: {exc}", method="lu"
        ) from exc


def _solve_cg(system: DiscreteSystem, tol: float) -> np.ndarray:
    diagonal = system.matrix.diagonal()
    if np.any(diagonal <= 0) or not np.all(np.isfinite(diagonal)):
        raise SolverDivergenceError(
            "system diagonal is not positive; CG preconditioner undefined",
            method="cg",
        )
    precond = sp.diags(1.0 / diagonal)
    solution, info = spla.cg(
        system.matrix,
        system.rhs,
        rtol=min(tol, 1e-8),
        atol=0.0,
        maxiter=_CG_MAXITER,
        M=precond,
    )
    if info != 0:
        raise SolverDivergenceError(
            f"CG did not converge (info={info})", method="cg"
        )
    return solution


def _guarded_solution(
    system: DiscreteSystem,
    flat: np.ndarray,
    method: str,
    tol: float,
    degraded: bool,
) -> ThermalSolution:
    residual = check_residual(
        system.matrix, flat, system.rhs, tol=tol, method=method
    )
    solution = system.solution_from(flat)
    check_temperature_bounds(solution.temperature)
    solution.residual = residual
    solution.method = method
    solution.degraded = degraded
    return solution


def solve_steady_state_resilient(
    stack: ThermalStack,
    config: Optional[SolverConfig] = None,
    residual_tol: float = RESIDUAL_TOL,
    coarsen_factor: int = 2,
    injector: Optional[FaultInjector] = None,
    report: Optional[LadderReport] = None,
) -> ThermalSolution:
    """Steady-state solve with the LU -> CG -> coarse-grid fallback ladder.

    Args:
        stack: Configuration to solve.
        config: Discretization parameters.
        residual_tol: Relative-residual acceptance threshold.
        coarsen_factor: Grid reduction for the last rung.
        injector: Optional fault injector; rungs named ``"lu"``,
            ``"cg"``, ``"coarse"`` can be forced to fail.
        report: Optional ladder report, filled in as rungs are tried.

    Returns:
        A :class:`ThermalSolution` with ``residual``, ``method``, and
        ``degraded`` populated.

    Raises:
        SolverDivergenceError: every rung failed.
        GuardViolation: the assembled system itself is invalid (e.g. a
            non-finite or negative power injection) — no ladder rung can
            repair bad input.
    """
    config = config or SolverConfig()
    report = report if report is not None else LadderReport()
    system = assemble_system(stack, config)
    # Bad input is not recoverable by switching solvers: reject it here.
    if not np.all(np.isfinite(system.rhs)):
        raise GuardViolation(
            "assembled source vector contains non-finite power",
            guard="power-map",
        )
    check_finite(system.matrix.data, "system matrix")

    # Rung 1: direct LU.
    try:
        if injector is not None and injector.should_fail("lu"):
            raise SolverDivergenceError("fault injection: LU", method="lu")
        flat = _solve_lu(system)
        solution = _guarded_solution(system, flat, "lu", residual_tol, False)
        report.method, report.residual = "lu", solution.residual
        report.attempts.append(f"lu: ok (residual {solution.residual:.2e})")
        return solution
    except (SolverDivergenceError, GuardViolation) as exc:
        report.attempts.append(f"lu: {exc}")

    # Rung 2: Jacobi-preconditioned CG on the same system.
    try:
        if injector is not None and injector.should_fail("cg"):
            raise SolverDivergenceError("fault injection: CG", method="cg")
        flat = _solve_cg(system, residual_tol)
        solution = _guarded_solution(system, flat, "cg", residual_tol, False)
        report.method, report.residual = "cg", solution.residual
        report.attempts.append(f"cg: ok (residual {solution.residual:.2e})")
        return solution
    except (SolverDivergenceError, GuardViolation) as exc:
        report.attempts.append(f"cg: {exc}")

    # Rung 3: coarser grid, explicitly degraded.
    coarse = replace(
        config,
        nx=max(4, config.nx // coarsen_factor),
        ny=max(4, config.ny // coarsen_factor),
    )
    coarse_system = assemble_system(stack, coarse)
    last_error: Exception
    for method, solver in (("lu-coarse", _solve_lu),
                           ("cg-coarse", lambda s: _solve_cg(s, residual_tol))):
        try:
            if injector is not None and injector.should_fail("coarse"):
                raise SolverDivergenceError(
                    f"fault injection: {method}", method=method
                )
            flat = solver(coarse_system)
            solution = _guarded_solution(
                coarse_system, flat, method, residual_tol, True
            )
            report.method, report.residual = method, solution.residual
            report.degraded = True
            report.attempts.append(
                f"{method}: ok at nx={coarse.nx} (residual {solution.residual:.2e})"
            )
            return solution
        except (SolverDivergenceError, GuardViolation) as exc:
            report.attempts.append(f"{method}: {exc}")
            last_error = exc

    raise SolverDivergenceError(
        "all fallback rungs failed: " + "; ".join(report.attempts),
        method="ladder",
        partial={"attempts": list(report.attempts)},
    ) from last_error


def solve_transient_resilient(
    stack: ThermalStack,
    config: Optional[SolverConfig] = None,
    duration_s: float = 10.0,
    dt_s: float = 0.05,
    max_halvings: int = 3,
    injector: Optional[FaultInjector] = None,
    report: Optional[LadderReport] = None,
    **kwargs,
) -> TransientResult:
    """Transient integration with step-halving retry.

    Runs :func:`repro.thermal.transient.solve_transient`; if the
    integration diverges, retries with the time step halved, up to
    *max_halvings* times.  Extra keyword arguments are forwarded to the
    integrator (initial field, power schedule, checkpointing).

    Raises:
        SolverDivergenceError: still diverging at the smallest step.
    """
    report = report if report is not None else LadderReport()
    dt = dt_s
    last: Optional[SolverDivergenceError] = None
    for halving in range(max_halvings + 1):
        try:
            if injector is not None and injector.should_fail("transient"):
                raise SolverDivergenceError(
                    f"fault injection: transient dt={dt}", method="transient"
                )
            result = solve_transient(
                stack, config, duration_s=duration_s, dt_s=dt, **kwargs
            )
            report.method = f"transient-dt={dt:g}"
            report.degraded = halving > 0
            report.attempts.append(f"dt={dt:g}: ok after {halving} halving(s)")
            return result
        except SolverDivergenceError as exc:
            report.attempts.append(f"dt={dt:g}: {exc}")
            last = exc
            dt /= 2.0
    raise SolverDivergenceError(
        f"transient integration diverged even at dt={dt * 2:g} "
        f"after {max_halvings} halvings",
        method="transient",
        partial={"attempts": list(report.attempts)},
    ) from last
