"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the registered experiments (every table/figure).
* ``run <experiment-id>`` — run one experiment and print its results
  next to the published values.
* ``memory`` — the Section 3 study (Figure 5 + Figure 8 + headlines).
* ``logic`` — the Section 4 study (Table 4 + Figure 11 + Table 5).
* ``thermal-map`` — ASCII thermal maps of the baseline and the 32 MB
  stack (Figures 6b / 8b).
* ``figures`` — render every regenerable figure to SVG files.
* ``validate`` — run the acceptance suite: every quantity graded
  pass/shape/fail against the published values.
* ``replay`` — replay a trace file through the memory hierarchy with
  strict/lenient validation and optional checkpoint/resume.
* ``sweep`` — run a campaign of experiments in crash-isolated,
  supervised workers with timeouts, retries, and a resumable journal.
* ``verify`` — integrity-check an artifact offline: a checkpoint's
  sha256 envelope or a journal's per-line CRCs; exits 1 on corruption.
* ``lint`` — run the static invariant passes (determinism, layering,
  experiment contracts, physics hygiene, plus the flow-sensitive
  concurrency and async-safety families) over the source tree; exits
  2 on violations not grandfathered by the baseline.
* ``bench`` — time the simulator hot paths against their reference
  implementations, write a ``BENCH_repro.json`` report, and optionally
  gate against a committed baseline (exit 1 on a speedup regression).
* ``dst`` — deterministic simulation testing: drive the real
  scheduler/lease/journal/service stack through seed-derived fault
  histories on a virtual clock, checking protocol invariants after
  every event; violations are shrunk to a minimal replayable
  ``(seed, schedule)`` artifact (exit 1 on violation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.analysis import (
    ascii_heatmap,
    compare_to_paper,
    format_figure5,
    format_table5,
)
from repro.core.experiments import get_experiment, list_experiments


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Registered experiments (paper tables/figures):")
    for experiment_id in list_experiments():
        experiment = get_experiment(experiment_id)
        print(f"  {experiment_id:12} {experiment.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.experiments import run_experiment
    from repro.oracles.config import set_oracle_mode

    if getattr(args, "oracles", None):
        set_oracle_mode(args.oracles)
    experiment = get_experiment(args.experiment)
    kwargs = {}
    if args.nx:
        kwargs["nx"] = args.nx
    if args.scale:
        kwargs["scale"] = args.scale
    # Failures are captured (not raised) so the exit status is always
    # meaningful for scripting: 0 on success, 1 on failure, 3 on a
    # completed-but-degraded run (an oracle detected corruption and
    # fell back to a trusted path).  --strict re-raises for debugging
    # with a full traceback.
    outcome = run_experiment(
        args.experiment, strict=args.strict, seed=args.seed, **kwargs
    )
    violations = (outcome.oracles or {}).get("violations", [])
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, default=str))
        return (3 if violations else 0) if outcome.ok else 1
    print(f"{experiment.id}: {experiment.title}")
    print("\npaper values:")
    print(json.dumps(experiment.paper_values, indent=2, default=str))
    if not outcome.ok:
        print(f"\nFAILED ({outcome.error_type}): {outcome.error}")
        if outcome.partial:
            print("partial results before failure:")
            print(json.dumps(outcome.partial, indent=2, default=str))
        print(f"\nreproduce: fingerprint {outcome.fingerprint} "
              f"(seed {outcome.seed}, kwargs {outcome.kwargs})")
        return 1
    print("\nmeasured:")
    print(json.dumps(outcome.result, indent=2, default=str))
    if outcome.oracles:
        checks = outcome.oracles.get("total_checks", 0)
        print(f"\noracles ({outcome.oracles.get('mode')}): "
              f"{checks} checks, {len(violations)} violation(s)")
        for violation in violations:
            print(f"  DEGRADED [{violation.get('oracle')}] "
                  f"{violation.get('detail')} -> {violation.get('action')}")
    return 3 if violations else 0


def _parse_chaos_force(specs: List[str]) -> dict:
    """``mode[:target[:count]]`` flags -> FaultInjector forced_failures.

    Worker modes (``crash``, ``hang``, ...) target a task id and map to
    ``worker-<mode>[:<task>]`` stages.  Executor modes
    (``executor-crash``, ``partition``, ``lease-stall``) target an
    executor id, and ``duplicate-delivery`` targets a task id; those map
    to their stage names unprefixed.  Service modes (``slow-client``,
    ``request-flood``, ``corrupt-cached-result``, ``backend-partition``)
    target a client id or task fingerprint and are unprefixed too
    (``repro serve --chaos-force``).
    """
    from repro.resilience.faults import (
        EXECUTOR_FAULT_MODES,
        SERVICE_FAULT_MODES,
        WORKER_FAULT_MODES,
    )

    backend_modes = EXECUTOR_FAULT_MODES + ("duplicate-delivery",)
    forced = {}
    for spec in specs:
        parts = spec.split(":")
        mode = parts[0]
        if mode in WORKER_FAULT_MODES:
            prefix = f"worker-{mode}"
        elif mode in backend_modes or mode in SERVICE_FAULT_MODES:
            prefix = mode
        else:
            known = WORKER_FAULT_MODES + backend_modes + SERVICE_FAULT_MODES
            raise ValueError(
                f"unknown chaos mode {mode!r}; known: {known}"
            )
        count = -1
        target = ""
        if len(parts) >= 2 and parts[1]:
            target = parts[1]
        if len(parts) >= 3:
            count = int(parts[2])
        key = prefix + (f":{target}" if target else "")
        forced[key] = count
    return forced


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from repro.analysis import render_campaign_report
    from repro.resilience.faults import FaultInjector
    from repro.runner.supervisor import (
        CampaignConfig,
        RetryPolicy,
        run_campaign,
    )
    from repro.runner.tasks import select_tasks

    kwargs = {}
    if args.nx:
        kwargs["nx"] = args.nx
    if args.scale:
        kwargs["scale"] = args.scale
    try:
        tasks = select_tasks(args.experiments, kwargs=kwargs, seed=args.seed)
        forced = _parse_chaos_force(args.chaos_force or [])
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    if args.resume and not os.path.exists(args.journal):
        print(f"sweep: --resume given but journal {args.journal!r} "
              f"does not exist", file=sys.stderr)
        return 2

    rates = {
        mode: rate
        for mode, rate in (
            ("crash", args.chaos_crash),
            ("hang", args.chaos_hang),
            ("corrupt-result", args.chaos_corrupt),
        )
        if rate
    }
    injector = None
    if forced or rates:
        injector = FaultInjector(
            seed=args.chaos_seed,
            forced_failures=forced,
            worker_fault_rates=rates,
        )

    try:
        config = CampaignConfig(
            workers=args.workers,
            task_timeout_s=args.timeout,
            heartbeat_timeout_s=args.heartbeat_timeout,
            retry=RetryPolicy(max_retries=args.retries),
            journal_path=args.journal,
            resume=args.resume,
            injector=injector,
            oracle_mode=args.oracles,
            backend=args.backend,
            lease_ttl_s=args.lease_ttl,
        )
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    report = run_campaign(tasks, config)
    rendered = render_campaign_report(report.to_dict())
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
        print(rendered, file=sys.stderr)
    else:
        print(rendered)
    # 0: all ok; 3: campaign completed but degraded (scripts can tell
    # "partial failure" from hard errors, which exit 1/2).
    return 3 if report.degraded else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.memsim import baseline_config
    from repro.memsim.replay import replay_trace
    from repro.resilience.errors import ReproError
    from repro.traces.record import read_trace

    strict = args.mode != "lenient"
    checkpoint_path = args.checkpoint or (args.trace + ".ckpt")
    try:
        records = list(read_trace(args.trace, strict=strict))
        stats = replay_trace(
            records,
            baseline_config(),
            warmup_fraction=args.warmup_fraction,
            mode=args.mode,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=(
                checkpoint_path if args.checkpoint_every else None
            ),
            resume_from=checkpoint_path if args.resume else None,
        )
    except (ReproError, OSError) as exc:
        print(f"replay failed ({type(exc).__name__}): {exc}", file=sys.stderr)
        return 1
    print(f"replayed {args.trace}: {stats.n_accesses} measured references")
    print(f"  CPMA          {stats.cpma:.3f} cycles/access")
    print(f"  avg latency   {stats.avg_latency:.1f} cycles")
    print(f"  off-die BW    {stats.bandwidth_gbps:.2f} GB/s")
    print(f"  bus power     {stats.bus_power_w:.2f} W")
    if stats.quarantined:
        print(f"  quarantined   {stats.quarantined} corrupt record(s): "
              f"{stats.quarantined_by_reason}")
    return 0


def _verify_file(path: str) -> tuple:
    """``(status, detail)`` for one artifact; status ok|corrupt|skipped.

    The classification batch ``repro verify`` prints per file: a
    checkpoint (sha256 envelope) or a journal (per-line CRC) that
    proves itself is ``ok``; one that fails any check is ``corrupt``;
    an empty file is ``skipped`` (nothing to prove either way).
    """
    from repro.resilience.checkpoint import MAGIC, verify_checkpoint
    from repro.resilience.errors import CheckpointError
    from repro.runner.journal import scan_journal

    try:
        with open(path, "rb") as handle:
            head = handle.read(len(MAGIC))
    except OSError as exc:
        return "corrupt", f"cannot read: {exc}"
    if not head:
        return "skipped", "empty file"
    if head == MAGIC:
        try:
            summary = verify_checkpoint(path)
        except CheckpointError as exc:
            return "corrupt", f"checkpoint: {exc}"
        return "ok", (
            f"checkpoint kind={summary.get('kind')} "
            f"nbytes={summary.get('nbytes')}"
        )
    entries, torn, crc_failed = scan_journal(path)
    if crc_failed:
        return "corrupt", (
            f"journal: {crc_failed} CRC-failed line(s) "
            f"({len(entries)} verifiable, {torn} torn)"
        )
    if not entries:
        return "corrupt", (
            f"journal: no verifiable entries ({torn} torn line(s))"
        )
    detail = f"journal: {len(entries)} verifiable entr(ies)"
    if torn:
        detail += f", {torn} torn line(s)"
    return "ok", detail


def _cmd_verify_batch(root: str) -> int:
    """Verify every artifact under *root*; exit 1 if any is corrupt.

    Quarantined artifacts (``*.quarantined``) and in-flight temporaries
    (``*.tmp``) are reported as skipped, not corrupt: quarantine is the
    system *working* — the file was already caught, moved aside, and
    its fingerprint re-simulated.
    """
    import os

    checked = {"ok": 0, "corrupt": 0, "skipped": 0}
    corrupt_files = []
    paths = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            paths.append(os.path.join(dirpath, name))
    for path in sorted(paths):
        if path.endswith((".quarantined", ".tmp")):
            status, detail = "skipped", "quarantined/temporary artifact"
        else:
            status, detail = _verify_file(path)
        checked[status] += 1
        marker = {"ok": "ok     ", "corrupt": "CORRUPT",
                  "skipped": "skipped"}[status]
        print(f"  {marker} {path}: {detail}")
        if status == "corrupt":
            corrupt_files.append(path)
    total = sum(checked.values())
    print(f"{root}: {total} file(s) checked, {checked['ok']} ok, "
          f"{checked['corrupt']} corrupt, {checked['skipped']} skipped")
    if corrupt_files:
        print(f"verify: CORRUPT artifact(s): {corrupt_files}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Offline integrity check of checkpoint/journal artifacts.

    A file argument keeps the original single-artifact report; a
    directory argument verifies every file under it (batch mode) with a
    per-file report and exit 1 when anything is corrupt.
    """
    import os

    from repro.resilience.checkpoint import MAGIC, verify_checkpoint
    from repro.resilience.errors import CheckpointError
    from repro.runner.journal import scan_journal

    if os.path.isdir(args.artifact):
        return _cmd_verify_batch(args.artifact)

    try:
        with open(args.artifact, "rb") as handle:
            head = handle.read(len(MAGIC))
    except OSError as exc:
        print(f"verify: cannot read {args.artifact}: {exc}", file=sys.stderr)
        return 2

    if head == MAGIC:
        try:
            summary = verify_checkpoint(args.artifact)
        except CheckpointError as exc:
            print(f"verify: CORRUPT checkpoint: {exc}", file=sys.stderr)
            return 1
        print(f"{args.artifact}: checkpoint OK")
        for key in ("version", "kind", "nbytes", "sha256", "note"):
            if summary.get(key) is not None:
                print(f"  {key:8} {summary[key]}")
        return 0

    # Not a checkpoint: treat as a JSONL journal and verify line CRCs.
    entries, torn, crc_failed = scan_journal(args.artifact)
    print(f"{args.artifact}: journal with {len(entries)} verifiable "
          f"entr(ies), {torn} torn line(s), {crc_failed} CRC failure(s)")
    if crc_failed:
        print("verify: CORRUPT journal: CRC-failed line(s) will be "
              "re-run on --resume", file=sys.stderr)
        return 1
    if not entries and torn:
        print("verify: journal holds no verifiable entries", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the fault-tolerant simulation service (blocking)."""
    from repro.resilience.faults import FaultInjector
    from repro.service.server import ServiceConfig, run_service

    injector = None
    try:
        forced = _parse_chaos_force(args.chaos_force or [])
        if forced:
            injector = FaultInjector(
                seed=args.chaos_seed, forced_failures=forced
            )
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            data_dir=args.data_dir,
            registry_spec=args.registry,
            backend=args.backend,
            workers=args.workers,
            parallel_jobs=args.parallel_jobs,
            job_timeout_s=args.job_timeout,
            max_job_attempts=args.max_attempts,
            rate_per_s=args.rate,
            burst=args.burst,
            queue_depth=args.queue_depth,
            shed_watermark=args.shed_watermark,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_s=args.breaker_reset,
            oracle_mode=args.oracles,
            injector=injector,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    return run_service(config)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.checks.engine import main as lint_main

    return lint_main(args)


def _cmd_dtm(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.analysis.coupled import (
        format_epoch_trace,
        format_policy_comparison,
    )
    from repro.coupled import (
        CoupledConfig,
        NoDtm,
        PidDtm,
        PredictiveDtm,
        ThresholdDtm,
        bursty_load_spikes,
        constant_load,
        run_coupled_loop,
    )

    spike = args.load == "spike"
    config = CoupledConfig(
        nx=args.nx,
        n_epochs=args.epochs,
        epoch_s=args.epoch_s,
        dt_s=args.dt,
        start="steady" if spike else "cold",
    )
    load = (
        bursty_load_spikes(seed=args.seed) if spike
        else constant_load(1.0)
    )
    # Spike-scenario tuning matches the dtm_load_spike experiment: the
    # threshold actuator slews 3%/epoch, the reactive PID gets the
    # widest guard.
    available = {
        "none": lambda: NoDtm(),
        "threshold": lambda: (
            ThresholdDtm(vcc_step=0.03) if spike else ThresholdDtm()
        ),
        "pid": lambda: PidDtm(guard_c=6.0) if spike else PidDtm(),
        "predictive": lambda: PredictiveDtm(),
    }
    names = list(available) if args.policy == "all" else [args.policy]
    results = [
        run_coupled_loop(available[name](), load, config) for name in names
    ]
    if args.json:
        print(json_module.dumps(
            {r.policy: r.to_dict() for r in results}, indent=2
        ))
        return 0
    if len(results) == 1:
        print(format_epoch_trace(results[0].to_dict()))
    else:
        print(format_policy_comparison([r.summary() for r in results]))
    over = {
        r.policy: r.exceeded_epochs for r in results if r.exceeded_epochs
    }
    if over:
        print(f"ceiling exceeded: {over}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_to_baseline,
        load_report,
        oracle_overhead_failures,
        run_suite,
        write_report,
    )

    quick = not args.full
    results = run_suite(
        quick=quick,
        seed=args.seed,
        repeats=args.repeats,
        progress=lambda message: print(message, file=sys.stderr),
    )
    report = write_report(
        results,
        args.out,
        extra={"tier": "quick" if quick else "full", "seed": args.seed},
    )
    print(f"wrote {args.out}")
    for result in results:
        marker = "ok " if result.equivalent else "FAIL-EQUIV"
        print(
            f"  {marker} {result.name:22} "
            f"ref {1e3 * result.reference_s:9.1f} ms  "
            f"opt {1e3 * result.optimized_s:9.1f} ms  "
            f"{result.speedup:6.2f}x"
        )
    failed_equivalence = [r.name for r in results if not r.equivalent]
    if failed_equivalence:
        print(
            f"bench: equivalence FAILED for {failed_equivalence}",
            file=sys.stderr,
        )
        return 1
    overhead_failures = oracle_overhead_failures(results)
    if overhead_failures:
        print("bench: oracle overhead OVER BUDGET:", file=sys.stderr)
        for problem in overhead_failures:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.baseline:
        try:
            baseline = load_report(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        problems = compare_to_baseline(
            report, baseline, threshold=args.threshold
        )
        if problems:
            print("bench: REGRESSIONS vs baseline:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline}")
    return 0


def _cmd_memory(args: argparse.Namespace) -> int:
    from repro.core.memory_on_logic import run_memory_study

    workloads = args.workloads.split(",") if args.workloads else None
    result = run_memory_study(
        workloads=workloads,
        scale=args.scale or 8,
        length_factor=args.length_factor,
    )
    print(format_figure5(result.cpma, result.bandwidth))
    print()
    paper = {"2D 4MB": 88.35, "3D 12MB": 92.85, "3D 32MB": 88.43,
             "3D 64MB": 90.27}
    print(compare_to_paper(paper, result.peak_temps, unit="C",
                           title="Figure 8a: peak temperatures"))
    print(f"\nmax CPMA reduction at 32MB: "
          f"{100 * result.max_cpma_reduction():.1f}% (paper: up to 55%)")
    print(f"bus power reduction:        "
          f"{100 * result.bus_power_reduction():.1f}% (paper: 66%)")
    return 0


def _cmd_logic(args: argparse.Namespace) -> int:
    from repro.core.logic_on_logic import run_logic_study
    from repro.thermal.solver import SolverConfig

    solver = SolverConfig(nx=args.nx or 48, ny=args.nx or 48)
    result = run_logic_study(solver=solver, solve_temp_point=args.solve_temp)
    paper_rows = {
        "front_end": 0.2, "trace_cache": 0.33, "rename_alloc": 0.66,
        "fp_wire": 4.0, "int_rf_read": 0.5, "data_cache_read": 1.5,
        "instruction_loop": 1.0, "retire_dealloc": 1.0, "fp_load": 2.0,
        "store_lifetime": 3.0,
    }
    print(compare_to_paper(paper_rows, result.per_row_gains, unit="%",
                           title="Table 4: per-area gains"))
    print(f"\ntotal gain {result.total_gain_pct:.1f}% (paper ~15%), "
          f"power -{result.power_reduction_pct:.1f}% (paper -15%)")
    paper_temps = {"2D Baseline": 98.6, "3D": 112.5, "3D Worstcase": 124.75}
    measured = {
        "2D Baseline": result.peak_temp_2d,
        "3D": result.peak_temp_3d,
        "3D Worstcase": result.peak_temp_worstcase,
    }
    print()
    print(compare_to_paper(paper_temps, measured, unit="C",
                           title="Figure 11: peak temperatures"))
    print()
    print(format_table5([
        {"name": p.name, "vcc": p.vcc, "freq": p.freq, "power_w": p.power_w,
         "power_pct": p.power_pct, "perf_pct": p.perf_pct, "temp_c": p.temp_c}
        for p in result.table5
    ]))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import render_all_figures

    written = render_all_figures(
        args.out,
        scale=args.scale,
        length_factor=args.length_factor,
        nx=args.nx or 40,
        workloads=args.workloads.split(",") if args.workloads else None,
    )
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.thermal.solver import SolverConfig
    from repro.validation import run_validation

    grid = SolverConfig(nx=args.nx or 48, ny=args.nx or 48)
    report = run_validation(
        grid=grid,
        scale=args.scale,
        length_factor=args.length_factor,
        include_memory=not args.skip_memory,
    )
    print(report.render())
    return 1 if report.failures else 0


def _cmd_thermal_map(args: argparse.Namespace) -> int:
    from repro.floorplan import core2duo_floorplan, stacked_cache_die
    from repro.thermal import simulate_planar, simulate_stack
    from repro.thermal.solver import SolverConfig

    config = SolverConfig(nx=args.nx or 48, ny=args.nx or 48)
    planar = simulate_planar(core2duo_floorplan(), config)
    print(ascii_heatmap(
        planar.die_map("metal-1"), width=args.width,
        title="Figure 6b: 2D baseline (active layer)",
    ))
    print(f"peak {planar.peak_temperature():.2f} C / coolest "
          f"{planar.coolest_on_die():.2f} C (paper: 88.35 / 59)\n")
    cpu = core2duo_floorplan(with_l2=False)
    stacked = simulate_stack(
        cpu, stacked_cache_die("dram-32mb", cpu), die2_metal="al",
        config=config,
    )
    print(ascii_heatmap(
        stacked.die_map("metal-1"), width=args.width,
        title="Figure 8b: 3D 32MB stack (CPU active layer)",
    ))
    print(f"peak {stacked.peak_temperature():.2f} C (paper: 88.43)")
    return 0


def _cmd_dst(args: argparse.Namespace) -> int:
    from repro.dst import explore, replay
    from repro.dst.mutations import apply_mutation

    def _progress(history: Any) -> None:
        if args.verbose:
            print(history.summary())

    with apply_mutation(args.mutate):
        if args.replay:
            history = replay(args.replay)
            print(history.summary())
            for violation in history.violations:
                print(f"  - {violation}")
            print(f"journal sha256 {history.journal_sha}")
            print(f"report  sha256 {history.report_sha}")
            if args.json:
                print(json.dumps({
                    "seed": history.seed,
                    "ok": history.ok,
                    "violations": history.violations,
                    "journal_sha": history.journal_sha,
                    "report_sha": history.report_sha,
                }, indent=2, sort_keys=True))
            return 0 if history.ok else 1
        summary = explore(
            args.seeds,
            seed_base=args.seed_base,
            profile=args.profile,
            artifact_path=args.artifact,
            on_history=_progress,
            shrink=not args.no_shrink,
        )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    elif summary["ok"]:
        print(
            f"dst: {summary['explored']} histories "
            f"[{args.profile}], no invariant violations"
        )
    if not summary["ok"]:
        print(
            f"dst: seed {summary['failing_seed']} violated after "
            f"{summary['explored']} histories; minimized to "
            f"{summary['minimal_events']} fault event(s)"
        )
        for violation in summary["violations"]:
            print(f"  - {violation}")
        if summary["artifact"]:
            print(f"replayable artifact: {summary['artifact']}")
            print(f"  (re-run: repro dst --replay {summary['artifact']})")
    return 0 if summary["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Die Stacking (3D) Microarchitecture - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="run one table/figure experiment")
    run.add_argument("experiment", help="experiment id (see 'list')")
    run.add_argument("--nx", type=int, help="thermal grid resolution")
    run.add_argument("--scale", type=int, help="capacity/footprint scale")
    run.add_argument("--seed", type=int,
                     help="RNG seed for a bit-for-bit reproducible run")
    run.add_argument("--json", action="store_true",
                     help="print the structured outcome (ok/result/error/"
                          "fingerprint) as JSON")
    run.add_argument("--strict", action="store_true",
                     help="re-raise failures with a traceback instead of "
                          "capturing them")
    run.add_argument("--oracles", choices=("off", "sample", "strict"),
                     default="sample",
                     help="runtime invariant oracles: off, sample "
                          "(default; cheap checks + sampled differential "
                          "re-execution), or strict (check everything)")
    run.add_argument("--lenient", action="store_true",
                     help=argparse.SUPPRESS)  # former default; kept for compat

    sweep = sub.add_parser(
        "sweep",
        help="run a supervised campaign of experiments in crash-isolated "
             "workers",
    )
    sweep.add_argument("experiments", nargs="*",
                       help="experiment id globs, e.g. 'figure-*' "
                            "(default: every registered experiment)")
    sweep.add_argument("--workers", type=int, default=2,
                       help="max concurrent worker processes")
    sweep.add_argument("--timeout", type=float, default=600.0,
                       help="per-task wall-clock budget in seconds; "
                            "workers past it are killed")
    sweep.add_argument("--retries", type=int, default=2,
                       help="retry budget per task (exponential backoff)")
    sweep.add_argument("--journal", default="campaign.jsonl",
                       help="append-only JSONL result journal")
    sweep.add_argument("--resume", action="store_true",
                       help="skip tasks with an ok entry in the journal; "
                            "re-run only failures")
    sweep.add_argument("--seed", type=int,
                       help="base RNG seed (task i runs with seed+i)")
    sweep.add_argument("--nx", type=int, help="thermal grid resolution")
    sweep.add_argument("--scale", type=int, help="capacity/footprint scale")
    sweep.add_argument("--backend", default="local",
                       metavar="{local,inproc,nodes:N}",
                       help="executor backend: 'local' (worker pool in "
                            "this process), 'inproc' (synchronous, "
                            "deterministic), or 'nodes:N' (N node "
                            "processes over a control socket; survives "
                            "losing any one of them)")
    sweep.add_argument("--lease-ttl", type=float, default=15.0,
                       help="seconds a claimed task may go without its "
                            "executor heartbeating before the lease is "
                            "reclaimed and the work re-queued")
    sweep.add_argument("--heartbeat-timeout", type=float, default=15.0,
                       help="seconds without a worker heartbeat before "
                            "it is declared dead and killed")
    sweep.add_argument("--json", action="store_true",
                       help="print the campaign report as JSON on stdout "
                            "(human rendering goes to stderr)")
    sweep.add_argument("--chaos-seed", type=int, default=0,
                       help="fault-injection seed (chaos soak)")
    sweep.add_argument("--chaos-crash", type=float, default=0.0,
                       metavar="RATE", help="worker crash probability")
    sweep.add_argument("--chaos-hang", type=float, default=0.0,
                       metavar="RATE", help="worker hang probability")
    sweep.add_argument("--chaos-corrupt", type=float, default=0.0,
                       metavar="RATE",
                       help="corrupt-result probability")
    sweep.add_argument("--chaos-force", action="append",
                       metavar="MODE[:TARGET[:N]]",
                       help="force a fault: worker modes crash|hang|stall|"
                            "corrupt-result|flip-operator (target: task "
                            "id) or backend modes executor-crash|"
                            "partition|lease-stall (target: executor id) "
                            "and duplicate-delivery (target: task id), "
                            "N times (-1 = always)")
    sweep.add_argument("--oracles", choices=("off", "sample", "strict"),
                       default="sample",
                       help="oracle mode workers run under (default: "
                            "sample)")

    verify = sub.add_parser(
        "verify",
        help="integrity-check a checkpoint (sha256 envelope) or journal "
             "(per-line CRC) without applying it; a directory argument "
             "verifies every artifact under it",
    )
    verify.add_argument("artifact",
                        help="checkpoint or JSONL journal file to verify, "
                             "or a directory of artifacts (batch mode: "
                             "per-file report, exit 1 on any corrupt "
                             "item)")

    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant simulation service: an async HTTP "
             "job API with admission control, a circuit breaker around "
             "the executor backend, and a verify-before-serve result "
             "cache",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port (0: pick a free port and print it)")
    serve.add_argument("--data-dir", default="service-data",
                       help="root for the result cache, spool journals, "
                            "and the service journal")
    serve.add_argument("--registry",
                       default="repro.core.experiments:REGISTRY",
                       metavar="MODULE:ATTR",
                       help="experiment registry the service runs from")
    serve.add_argument("--backend", default="inproc",
                       metavar="{local,inproc,nodes:N}",
                       help="executor backend jobs are scheduled onto")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker concurrency inside each job's "
                            "campaign run")
    serve.add_argument("--parallel-jobs", type=int, default=2,
                       help="jobs simulated concurrently")
    serve.add_argument("--job-timeout", type=float, default=60.0,
                       help="wall-clock budget per job run (seconds)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="dispatch attempts per job after backend "
                            "losses")
    serve.add_argument("--rate", type=float, default=20.0,
                       help="per-client sustained requests/second")
    serve.add_argument("--burst", type=float, default=40.0,
                       help="per-client burst budget (token bucket size)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="hard capacity of the admission queue")
    serve.add_argument("--shed-watermark", type=int, default=48,
                       help="queue depth at which new jobs shed 503")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive backend losses that open the "
                            "circuit breaker")
    serve.add_argument("--breaker-reset", type=float, default=2.0,
                       help="seconds before the open breaker half-opens "
                            "for a probe")
    serve.add_argument("--oracles", choices=("off", "sample", "strict"),
                       default="sample",
                       help="oracle mode job runs execute under")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="fault-injection seed")
    serve.add_argument("--chaos-force", action="append",
                       metavar="MODE[:TARGET[:N]]",
                       help="force a service fault: slow-client|"
                            "request-flood (target: client id) or "
                            "corrupt-cached-result|backend-partition "
                            "(target: task fingerprint), N times "
                            "(-1 = always)")

    replay = sub.add_parser(
        "replay", help="replay a trace file through the memory hierarchy"
    )
    replay.add_argument("trace", help="trace file (see traces.record.write_trace)")
    mode = replay.add_mutually_exclusive_group()
    mode.add_argument("--strict", dest="mode", action="store_const",
                      const="strict", default="strict",
                      help="fail on the first corrupt record (default)")
    mode.add_argument("--lenient", dest="mode", action="store_const",
                      const="lenient",
                      help="quarantine corrupt records and report counts")
    replay.add_argument("--warmup-fraction", type=float, default=0.3,
                        help="leading fraction used to warm the caches")
    replay.add_argument("--checkpoint-every", type=int, metavar="N",
                        help="checkpoint replay state every N records")
    replay.add_argument("--checkpoint", metavar="FILE",
                        help="checkpoint path (default: <trace>.ckpt)")
    replay.add_argument("--resume", action="store_true",
                        help="resume from the latest checkpoint")

    lint = sub.add_parser(
        "lint",
        help="run the static invariant passes (RPL1xx determinism, "
             "RPL2xx layering, RPL3xx contracts, RPL4xx physics, "
             "RPL5xx concurrency, RPL6xx async safety)",
    )
    lint.add_argument("--root", metavar="DIR",
                      help="package directory to scan (default: the "
                           "installed repro package)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="output format (json includes every diagnostic "
                           "plus the code table)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="baseline file grandfathering known violations "
                           "(default: repro-lint-baseline.json at the repo "
                           "root, if present)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline; report every finding as new")
    lint.add_argument("--select", action="append", metavar="RPLxxx",
                      help="only run codes with these prefixes "
                           "(comma-separated or repeated)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write the current findings as the new baseline "
                           "and exit 0")
    lint.add_argument("--verbose", action="store_true",
                      help="also print baselined (suppressed) findings")
    lint.add_argument("--explain", metavar="RPL###",
                      help="print the rule's rationale, an example "
                           "violation and the fix pattern, then exit")

    bench = sub.add_parser(
        "bench",
        help="micro-benchmark the simulator hot paths and gate against "
             "a baseline report",
    )
    tier = bench.add_mutually_exclusive_group()
    tier.add_argument("--quick", action="store_true", default=True,
                      help="small-input tier, ~half a minute (default; "
                           "the CI gate)")
    tier.add_argument("--full", action="store_true",
                      help="large traces and finer grids (a few minutes)")
    bench.add_argument("--out", default="BENCH_repro.json",
                       help="report destination (repro-bench/1 JSON)")
    bench.add_argument("--baseline", metavar="FILE",
                       help="gate speedups against this earlier report; "
                            "exit 1 on a regression")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="allowed fractional speedup drop vs baseline")
    bench.add_argument("--seed", type=int, default=1234,
                       help="trace-generation seed")
    bench.add_argument("--repeats", type=int, default=3,
                       help="best-of repeats per timing")

    dtm = sub.add_parser(
        "dtm",
        help="closed-loop thermal/DVFS co-simulation with DTM policies",
    )
    dtm.add_argument("--policy", default="all",
                     choices=["all", "none", "threshold", "pid",
                              "predictive"],
                     help="DTM policy to run (all = comparison table)")
    dtm.add_argument("--load", default="spike",
                     choices=["spike", "constant"],
                     help="workload driver: bursty load spikes (warm "
                          "start) or the constant design point (cold "
                          "start)")
    dtm.add_argument("--nx", type=int, default=20,
                     help="thermal grid resolution")
    dtm.add_argument("--epochs", type=int, default=64,
                     help="number of control epochs")
    dtm.add_argument("--epoch-s", type=float, default=1.0,
                     help="control epoch length, seconds")
    dtm.add_argument("--dt", type=float, default=0.5,
                     help="backward-Euler step inside an epoch")
    dtm.add_argument("--seed", type=int, default=0,
                     help="load-spike jitter seed")
    dtm.add_argument("--json", action="store_true",
                     help="emit full per-epoch traces as JSON")

    memory = sub.add_parser("memory", help="Section 3 Memory+Logic study")
    memory.add_argument("--workloads", help="comma-separated kernel names")
    memory.add_argument("--scale", type=int, default=8)
    memory.add_argument("--length-factor", type=float, default=0.5)

    logic = sub.add_parser("logic", help="Section 4 Logic+Logic study")
    logic.add_argument("--nx", type=int, help="thermal grid resolution")
    logic.add_argument("--solve-temp", action="store_true",
                       help="solve the Same Temp Vcc with our thermals")

    tmap = sub.add_parser("thermal-map", help="ASCII thermal maps")
    tmap.add_argument("--nx", type=int, help="thermal grid resolution")
    tmap.add_argument("--width", type=int, default=56, help="map width")

    figures = sub.add_parser(
        "figures", help="render every figure to SVG files"
    )
    figures.add_argument("--out", default="figures", help="output directory")
    figures.add_argument("--nx", type=int, help="thermal grid resolution")
    figures.add_argument("--scale", type=int, default=16)
    figures.add_argument("--length-factor", type=float, default=0.5)
    figures.add_argument("--workloads", help="comma-separated kernel names")

    dst = sub.add_parser(
        "dst",
        help="deterministic simulation testing of the distributed stack",
    )
    dst.add_argument("--seeds", type=int, default=50,
                     help="number of seed-derived fault histories to "
                          "explore")
    dst.add_argument("--seed-base", type=int, default=0,
                     help="first seed of the batch")
    dst.add_argument("--profile", default="quick",
                     choices=["quick", "deep"],
                     help="history length/chaos profile")
    dst.add_argument("--replay", metavar="FILE",
                     help="re-execute a saved (seed, schedule) artifact "
                          "instead of exploring")
    dst.add_argument("--artifact", default="dst-artifact.json",
                     help="where to write the minimized replay artifact "
                          "on failure")
    dst.add_argument("--mutate", metavar="NAME",
                     help="arm a deliberate protocol bug (see "
                          "repro.dst.mutations) to validate detection")
    dst.add_argument("--no-shrink", action="store_true",
                     help="skip schedule minimization on failure")
    dst.add_argument("--verbose", action="store_true",
                     help="print one line per explored history")
    dst.add_argument("--json", action="store_true",
                     help="emit the exploration summary as JSON")

    validate = sub.add_parser("validate", help="run the acceptance suite")
    validate.add_argument("--nx", type=int, help="thermal grid resolution")
    validate.add_argument("--scale", type=int, default=16)
    validate.add_argument("--length-factor", type=float, default=0.5)
    validate.add_argument("--skip-memory", action="store_true",
                          help="skip the (slow) Figure 5 subset")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "memory": _cmd_memory,
        "logic": _cmd_logic,
        "thermal-map": _cmd_thermal_map,
        "figures": _cmd_figures,
        "validate": _cmd_validate,
        "replay": _cmd_replay,
        "sweep": _cmd_sweep,
        "verify": _cmd_verify,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
        "bench": _cmd_bench,
        "dtm": _cmd_dtm,
        "dst": _cmd_dst,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
