"""High-level thermal simulation entry points.

Thin convenience wrappers tying floorplans, stack builders, and the solver
together — these are the calls the experiment harnesses use.
"""

from __future__ import annotations

from typing import Optional

from repro.floorplan.blocks import Floorplan
from repro.thermal.solver import SolverConfig, ThermalSolution, solve_steady_state
from repro.thermal.stack import build_3d_stack, build_planar_stack


def simulate_planar(
    die: Floorplan, config: Optional[SolverConfig] = None
) -> ThermalSolution:
    """Solve a single-die (2D) configuration in the desktop package."""
    return solve_steady_state(build_planar_stack(die), config)


def simulate_stack(
    die_near_sink: Floorplan,
    die_near_bumps: Floorplan,
    die2_metal: str = "cu",
    config: Optional[SolverConfig] = None,
) -> ThermalSolution:
    """Solve a face-to-face two-die (3D) configuration.

    ``die_near_sink`` should be the higher-power die ("In all cases the
    highest power die is placed closest to the heat sink", Section 3);
    ``die2_metal`` should be ``"al"`` when die #2 is a DRAM die.
    """
    stack = build_3d_stack(die_near_sink, die_near_bumps, die2_metal=die2_metal)
    return solve_steady_state(stack, config)


def peak_temperature_planar(
    die: Floorplan, config: Optional[SolverConfig] = None
) -> float:
    """Peak on-die temperature of a planar configuration, Celsius."""
    return simulate_planar(die, config).peak_temperature()


def peak_temperature_stack(
    die_near_sink: Floorplan,
    die_near_bumps: Floorplan,
    die2_metal: str = "cu",
    config: Optional[SolverConfig] = None,
) -> float:
    """Peak on-die temperature of a two-die stack, Celsius."""
    return simulate_stack(die_near_sink, die_near_bumps, die2_metal, config).peak_temperature()
