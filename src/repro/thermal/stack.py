"""Layer-stack construction for the thermal solver.

A :class:`ThermalStack` is the vertical cross-section of Figure 2: heat
sink, IHS, the die stack of Figure 1, package, socket, and motherboard,
described as a top-to-bottom list of :class:`Layer` objects.  Each layer has
a material inside the die footprint and a (usually low-conductivity) fill
material outside it — the paper's thermal maps show the epoxy fillet around
the die edge, which this two-region scheme reproduces.

Two builders are provided: :func:`build_planar_stack` for the 2D baseline
(single die) and :func:`build_3d_stack` for a face-to-face two-die stack.
Per Figure 1 and Table 2, die #1 (750 um bulk Si) is adjacent to the heat
sink and die #2 (thinned to 20 um) is adjacent to the C4 bumps; power is
dissipated in the active/metal layer of each die.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.floorplan.blocks import Floorplan
from repro.thermal.materials import (
    DOMAIN_SIZE_M,
    TABLE2_CONSTANTS,
    Material,
    get_material,
)

#: Metres per micrometre / millimetre, for readability below.
UM = 1e-6
MM = 1e-3


@dataclass(frozen=True)
class DieSpec:
    """One die of a multi-die stack (see :func:`build_multi_stack`).

    Attributes:
        floorplan: Power map of the die.
        metal: ``"cu"`` (logic) or ``"al"`` (DRAM), per Table 2.
        bulk_um: Bulk Si thickness; 0 selects the Table 2 default (750 um
            for the heat-sink die, 20 um thinned otherwise).
    """

    floorplan: Floorplan
    metal: str = "cu"
    bulk_um: float = 0.0


@dataclass(frozen=True)
class Layer:
    """One horizontal layer of the thermal stack.

    Attributes:
        name: Unique layer name within the stack.
        thickness_m: Layer thickness, metres.
        material_in: Material inside the die footprint.
        material_out: Material outside the die footprint (fill/air/epoxy).
        divisions: Number of finite-volume cells across the thickness.
        power_plan: If set, this floorplan's power is dissipated uniformly
            through the layer's thickness (used for active/metal layers).
    """

    name: str
    thickness_m: float
    material_in: Material
    material_out: Material
    divisions: int = 1
    power_plan: Optional[Floorplan] = None

    def __post_init__(self) -> None:
        if self.thickness_m <= 0:
            raise ValueError(f"layer {self.name!r} must have positive thickness")
        if self.divisions < 1:
            raise ValueError(f"layer {self.name!r} needs at least one division")

    def with_conductivity(self, conductivity: float) -> "Layer":
        """Copy of this layer with the in-die material conductivity replaced.

        Used for the Figure 3 sensitivity sweep over the Cu-metal and bond
        layer conductivities.
        """
        material = Material(f"{self.material_in.name}*", conductivity)
        return replace(self, material_in=material)


@dataclass
class ThermalStack:
    """A complete stacked-die/package/board thermal configuration.

    Attributes:
        name: Configuration name for reports.
        die_width_m: Die footprint width, metres.
        die_height_m: Die footprint height, metres.
        layers: Layers ordered top (heat-sink side) to bottom (board side).
        domain_size_m: Lateral extent of the square solve domain; the die
            footprint is centred inside it.
    """

    name: str
    die_width_m: float
    die_height_m: float
    layers: List[Layer] = field(default_factory=list)
    domain_size_m: float = DOMAIN_SIZE_M

    def __post_init__(self) -> None:
        if self.die_width_m > self.domain_size_m or self.die_height_m > self.domain_size_m:
            raise ValueError(
                f"die ({self.die_width_m}x{self.die_height_m} m) does not fit "
                f"in the {self.domain_size_m} m domain"
            )
        names = [layer.name for layer in self.layers]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate layer names in stack {self.name!r}")

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"stack {self.name!r} has no layer {name!r}")

    def replace_layer(self, layer: Layer) -> "ThermalStack":
        """Return a new stack with the same-named layer replaced."""
        if all(existing.name != layer.name for existing in self.layers):
            raise KeyError(f"stack {self.name!r} has no layer {layer.name!r}")
        new_layers = [
            layer if existing.name == layer.name else existing
            for existing in self.layers
        ]
        return ThermalStack(
            self.name,
            self.die_width_m,
            self.die_height_m,
            new_layers,
            self.domain_size_m,
        )

    @property
    def total_power(self) -> float:
        """Total dissipated power across all powered layers, W."""
        return sum(
            layer.power_plan.total_power
            for layer in self.layers
            if layer.power_plan is not None
        )


def _package_top_layers() -> List[Layer]:
    """Heat sink, TIM, and IHS — common to every configuration."""
    return [
        Layer("heat-sink", 4.0 * MM, get_material("heat-sink"),
              get_material("heat-sink"), divisions=3),
        Layer("tim1", 100.0 * UM, get_material("tim"), get_material("tim")),
        Layer("ihs", 2.0 * MM, get_material("ihs-copper"),
              get_material("ihs-copper"), divisions=2),
        Layer("tim2", 50.0 * UM, get_material("tim"), get_material("air-gap")),
    ]


def _package_bottom_layers() -> List[Layer]:
    """C4/underfill, package substrate, socket, and motherboard."""
    return [
        Layer("c4-underfill", 80.0 * UM, get_material("underfill"),
              get_material("epoxy-fillet")),
        Layer("package", 1.2 * MM, get_material("package"),
              get_material("package")),
        Layer("socket", 2.0 * MM, get_material("socket"), get_material("socket")),
        Layer("motherboard", 1.6 * MM, get_material("motherboard"),
              get_material("motherboard")),
    ]


def build_planar_stack(die: Floorplan, name: Optional[str] = None) -> ThermalStack:
    """The 2D reference configuration: a single die in a desktop package.

    Power is dissipated in the die's Cu metal/active layer, which sits face
    down toward the package (flip-chip), with the 750 um bulk Si toward the
    heat sink.
    """
    t = TABLE2_CONSTANTS
    layers = _package_top_layers()
    layers += [
        Layer("bulk-si-1", t["si1_thickness_um"] * UM, get_material("bulk-si"),
              get_material("epoxy-fillet"), divisions=2),
        Layer("metal-1", t["cu_metal_thickness_um"] * UM, get_material("cu-metal"),
              get_material("epoxy-fillet"), power_plan=die),
    ]
    layers += _package_bottom_layers()
    return ThermalStack(
        name or f"planar: {die.name}",
        die.die_width * MM,
        die.die_height * MM,
        layers,
    )


def build_multi_stack(
    dies: List["DieSpec"],
    name: Optional[str] = None,
) -> ThermalStack:
    """An N-die stack (the paper's "it is also possible to stack many
    die" extension; N = 2 reduces to :func:`build_3d_stack`).

    Die ordering is heat-sink side first.  Die #1 keeps its full-thickness
    bulk Si toward the sink and bonds face-to-face with die #2; each
    further die is thinned and bonded back-to-face through a TSV/bond
    layer, the construction of multi-die DRAM stacks (and what production
    HBM later standardized).

    Args:
        dies: Heat-sink side first.  Each entry gives the die's floorplan,
            metal ("cu"/"al"), and bulk thickness (defaults: 750 um for
            die #1, 20 um for the rest).
        name: Optional stack name.

    Returns:
        The assembled :class:`ThermalStack`.

    Raises:
        ValueError: On fewer than two dies or mismatched outlines.
    """
    if len(dies) < 2:
        raise ValueError("a stack needs at least two dies")
    first = dies[0].floorplan
    for spec in dies[1:]:
        if (
            abs(first.die_width - spec.floorplan.die_width) > 1e-9
            or abs(first.die_height - spec.floorplan.die_height) > 1e-9
        ):
            raise ValueError("all dies in a stack must share an outline")

    t = TABLE2_CONSTANTS
    epoxy = get_material("epoxy-fillet")

    def metal_layer(index: int, spec: "DieSpec") -> Layer:
        if spec.metal == "cu":
            return Layer(
                f"metal-{index}", t["cu_metal_thickness_um"] * UM,
                get_material("cu-metal"), epoxy, power_plan=spec.floorplan,
            )
        if spec.metal == "al":
            return Layer(
                f"metal-{index}", t["al_metal_thickness_um"] * UM,
                get_material("al-metal"), epoxy, power_plan=spec.floorplan,
            )
        raise ValueError(f"die metal must be 'cu' or 'al', got {spec.metal!r}")

    layers = _package_top_layers()
    bulk1 = dies[0].bulk_um if dies[0].bulk_um else t["si1_thickness_um"]
    layers.append(
        Layer("bulk-si-1", bulk1 * UM, get_material("bulk-si"), epoxy,
              divisions=2)
    )
    layers.append(metal_layer(1, dies[0]))
    for index, spec in enumerate(dies[1:], start=2):
        layers.append(
            Layer(f"bond-{index - 1}", t["bond_thickness_um"] * UM,
                  get_material("bond"), epoxy)
        )
        layers.append(metal_layer(index, spec))
        bulk = spec.bulk_um if spec.bulk_um else t["si2_thickness_um"]
        layers.append(
            Layer(f"bulk-si-{index}", bulk * UM, get_material("bulk-si"),
                  epoxy)
        )
    layers += _package_bottom_layers()
    return ThermalStack(
        name or f"{len(dies)}-die stack: {first.name}",
        first.die_width * MM,
        first.die_height * MM,
        layers,
    )


def build_3d_stack(
    die_near_sink: Floorplan,
    die_near_bumps: Floorplan,
    die2_metal: str = "cu",
    die2_bulk_um: Optional[float] = None,
    name: Optional[str] = None,
) -> ThermalStack:
    """A face-to-face two-die stack per Figure 1.

    Args:
        die_near_sink: Die #1 — the high-power die placed closest to the
            heat sink (the CPU die in every configuration in the paper).
        die_near_bumps: Die #2 — thinned die next to the C4 bumps (the
            cache die in Memory+Logic, the second logic die in
            Logic+Logic).
        die2_metal: ``"cu"`` for a logic die (12 um Cu stack) or ``"al"``
            for a DRAM die (2 um Al stack), per Table 2.
        die2_bulk_um: Bulk Si thickness of die #2; defaults to Table 2's
            20 um.
        name: Optional stack name.

    Returns:
        The assembled :class:`ThermalStack`.

    Raises:
        ValueError: If the two dies' outlines differ (face-to-face bonding
            requires matching footprints) or die2_metal is unknown.
    """
    if (
        abs(die_near_sink.die_width - die_near_bumps.die_width) > 1e-9
        or abs(die_near_sink.die_height - die_near_bumps.die_height) > 1e-9
    ):
        raise ValueError(
            "face-to-face stacking requires matching die outlines: "
            f"{die_near_sink.die_width}x{die_near_sink.die_height} vs "
            f"{die_near_bumps.die_width}x{die_near_bumps.die_height} mm"
        )
    t = TABLE2_CONSTANTS
    if die2_metal == "cu":
        metal2 = Layer(
            "metal-2", t["cu_metal_thickness_um"] * UM, get_material("cu-metal"),
            get_material("epoxy-fillet"), power_plan=die_near_bumps,
        )
    elif die2_metal == "al":
        metal2 = Layer(
            "metal-2", t["al_metal_thickness_um"] * UM, get_material("al-metal"),
            get_material("epoxy-fillet"), power_plan=die_near_bumps,
        )
    else:
        raise ValueError(f"die2_metal must be 'cu' or 'al', got {die2_metal!r}")
    bulk2_um = t["si2_thickness_um"] if die2_bulk_um is None else die2_bulk_um

    layers = _package_top_layers()
    layers += [
        Layer("bulk-si-1", t["si1_thickness_um"] * UM, get_material("bulk-si"),
              get_material("epoxy-fillet"), divisions=2),
        Layer("metal-1", t["cu_metal_thickness_um"] * UM, get_material("cu-metal"),
              get_material("epoxy-fillet"), power_plan=die_near_sink),
        Layer("bond", t["bond_thickness_um"] * UM, get_material("bond"),
              get_material("epoxy-fillet")),
        metal2,
        Layer("bulk-si-2", bulk2_um * UM, get_material("bulk-si"),
              get_material("epoxy-fillet")),
    ]
    layers += _package_bottom_layers()
    return ThermalStack(
        name or f"3D: {die_near_sink.name} + {die_near_bumps.name}",
        die_near_sink.die_width * MM,
        die_near_sink.die_height * MM,
        layers,
    )
