"""Steady-state finite-volume solver for the stacked-die heat equation.

Solves the steady form of the paper's Equation (1),

    div( K(x) grad T ) + Q(x) = 0,

on a structured grid over the full package cross-section, with Equation
(2)'s convective (Robin) boundary conditions on the heat-sink and
motherboard faces and adiabatic side walls.  The domain is the lateral
package extent; each :class:`~repro.thermal.stack.Layer` contributes one or
more grid planes with its own (two-region) conductivity, and power maps are
injected into the layers that carry floorplans.

The discrete system is symmetric positive definite and is solved directly
with a sparse LU factorization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.resilience.errors import GuardViolation, SolverDivergenceError
from repro.resilience.guards import relative_residual
from repro.thermal.materials import AMBIENT_C, HEATSINK_H_EFF, MOTHERBOARD_H
from repro.thermal.stack import ThermalStack


@dataclass(frozen=True)
class SolverConfig:
    """Discretization and boundary parameters.

    Attributes:
        nx: Lateral grid cells in x (the domain is square; ny = nx unless
            overridden).
        ny: Lateral grid cells in y.
        ambient_c: Ambient temperature, Celsius (Equation 2's T_amb).
        heatsink_h: Effective heat-transfer coefficient on the heat-sink
            face, W/(m^2 K) — lumps the fin array and forced airflow.
        motherboard_h: Natural-convection coefficient on the board back.
    """

    nx: int = 48
    ny: int = 48
    ambient_c: float = AMBIENT_C
    heatsink_h: float = HEATSINK_H_EFF
    motherboard_h: float = MOTHERBOARD_H

    def __post_init__(self) -> None:
        if self.nx < 4 or self.ny < 4:
            raise ValueError("grid must be at least 4x4")
        if self.heatsink_h <= 0 or self.motherboard_h <= 0:
            raise ValueError("heat-transfer coefficients must be positive")


@dataclass
class ThermalSolution:
    """Result of a steady-state solve.

    Attributes:
        temperature: Temperatures in Celsius, shape ``(nz, ny, nx)``, plane
            0 at the heat-sink face.
        stack: The solved configuration.
        config: Solver configuration used.
        layer_planes: Maps layer name to its ``(z_start, z_end)`` plane
            range (end exclusive).
        die_region: ``(j0, j1, i0, i1)`` cell bounds of the die footprint.
        residual: Relative residual ``||Ax - b|| / ||b||`` of the linear
            solve that produced this field.
        method: Solver that produced it (``"lu"``, ``"cg"``, or a
            ``*-coarse`` fallback rung).
        degraded: True if a fallback rung solved a coarser grid than was
            requested (see :mod:`repro.resilience.policy`).
    """

    temperature: np.ndarray
    stack: ThermalStack
    config: SolverConfig
    layer_planes: Dict[str, Tuple[int, int]]
    die_region: Tuple[int, int, int, int]
    _die_layer_names: List[str] = field(default_factory=list)
    residual: float = 0.0
    method: str = "lu"
    degraded: bool = False

    # -- queries -----------------------------------------------------------

    def solver_info(self) -> Dict[str, Any]:
        """How this field was produced: residual, method, degraded flag.

        Experiment results embed this dict so a fallback-ladder solve
        (see :mod:`repro.resilience.policy`) stays visible in campaign
        reports instead of silently blending with exact solves.
        """
        return {
            "residual": float(self.residual),
            "method": self.method,
            "degraded": bool(self.degraded),
        }

    def layer_temperature(self, name: str) -> np.ndarray:
        """Full-domain temperature slab of a layer, shape (planes, ny, nx)."""
        z0, z1 = self.layer_planes[name]
        return self.temperature[z0:z1]

    def die_map(self, name: str) -> np.ndarray:
        """Die-footprint temperature map of a layer (averaged over planes)."""
        j0, j1, i0, i1 = self.die_region
        return self.layer_temperature(name)[:, j0:j1, i0:i1].mean(axis=0)

    def layer_peak(self, name: str) -> float:
        """Hottest cell in a layer (die region only), Celsius."""
        return float(self.die_map(name).max())

    @property
    def die_layer_names(self) -> List[str]:
        """Names of layers belonging to the silicon die stack."""
        return list(self._die_layer_names)

    def peak_temperature(self) -> float:
        """Hottest on-die temperature across all die-stack layers, Celsius."""
        return max(self.layer_peak(name) for name in self._die_layer_names)

    def coolest_on_die(self) -> float:
        """Coldest temperature within the die footprint, Celsius."""
        return min(
            float(self.die_map(name).min()) for name in self._die_layer_names
        )

    def hottest_layer(self) -> str:
        """Name of the die-stack layer containing the global hotspot."""
        peaks = {name: self.layer_peak(name) for name in self._die_layer_names}
        return max(peaks, key=peaks.get)

    def boundary_heat_flow(self) -> float:
        """Total heat leaving through the convective boundaries, W.

        Conservation check: at steady state this equals the injected power.
        """
        nz, ny, nx = self.temperature.shape
        dx = self.stack.domain_size_m / nx
        dy = self.stack.domain_size_m / ny
        area = dx * dy
        dz_top = self._plane_thickness(0)
        dz_bot = self._plane_thickness(nz - 1)
        k_top, k_bot = self._boundary_conductivities()
        out = 0.0
        for plane, dz, k, h in (
            (self.temperature[0], dz_top, k_top, self.config.heatsink_h),
            (self.temperature[-1], dz_bot, k_bot, self.config.motherboard_h),
        ):
            # Series conductance: half-cell conduction + surface convection.
            g = area / (dz / (2.0 * k) + 1.0 / h)
            out += float(np.sum(g * (plane - self.config.ambient_c)))
        return out

    # -- internals for the conservation check ------------------------------

    def _plane_thickness(self, z: int) -> float:
        for layer in self.stack.layers:
            z0, z1 = self.layer_planes[layer.name]
            if z0 <= z < z1:
                return layer.thickness_m / layer.divisions
        raise IndexError(f"plane {z} out of range")

    def _boundary_conductivities(self) -> Tuple[float, float]:
        top = self.stack.layers[0].material_in.conductivity
        bottom = self.stack.layers[-1].material_in.conductivity
        return top, bottom


def _die_region_cells(
    stack: ThermalStack, nx: int, ny: int
) -> Tuple[int, int, int, int]:
    """Cell index bounds (j0, j1, i0, i1) of the centred die footprint."""
    dx = stack.domain_size_m / nx
    dy = stack.domain_size_m / ny
    ncx = max(2, int(round(stack.die_width_m / dx)))
    ncy = max(2, int(round(stack.die_height_m / dy)))
    ncx = min(ncx, nx)
    ncy = min(ncy, ny)
    i0 = (nx - ncx) // 2
    j0 = (ny - ncy) // 2
    return j0, j0 + ncy, i0, i0 + ncx


_DIE_LAYER_PREFIXES = ("bulk-si", "metal", "bond")


@dataclass
class DiscreteSystem:
    """The assembled finite-volume system of one stack/config pair.

    ``matrix @ T = rhs`` is the steady-state balance; *mass* holds each
    cell's heat capacity (rho c V, J/K) for the transient solver.
    """

    matrix: sp.csc_matrix
    rhs: np.ndarray
    mass: np.ndarray
    shape: Tuple[int, int, int]
    layer_planes: Dict[str, Tuple[int, int]]
    die_region: Tuple[int, int, int, int]
    die_layers: List[str]
    stack: ThermalStack
    config: SolverConfig

    def solution_from(self, temperature_flat: np.ndarray) -> ThermalSolution:
        """Wrap a flat temperature vector as a :class:`ThermalSolution`."""
        return ThermalSolution(
            temperature=temperature_flat.reshape(self.shape),
            stack=self.stack,
            config=self.config,
            layer_planes=self.layer_planes,
            die_region=self.die_region,
            _die_layer_names=list(self.die_layers),
        )


def assemble_system(
    stack: ThermalStack, config: Optional[SolverConfig] = None
) -> DiscreteSystem:
    """Discretize a stack into its finite-volume system."""
    config = config or SolverConfig()
    nx, ny = config.nx, config.ny
    j0, j1, i0, i1 = _die_region_cells(stack, nx, ny)

    # Expand layers into grid planes.
    plane_k: List[np.ndarray] = []   # conductivity per plane, (ny, nx)
    plane_c: List[np.ndarray] = []   # volumetric heat capacity, (ny, nx)
    plane_dz: List[float] = []
    plane_q: List[np.ndarray] = []   # power per cell per plane, W
    layer_planes: Dict[str, Tuple[int, int]] = {}
    die_layers: List[str] = []
    z = 0
    for layer in stack.layers:
        k_map = np.full((ny, nx), layer.material_out.conductivity)
        k_map[j0:j1, i0:i1] = layer.material_in.conductivity
        c_map = np.full(
            (ny, nx), layer.material_out.volumetric_heat_capacity
        )
        c_map[j0:j1, i0:i1] = layer.material_in.volumetric_heat_capacity
        q_map = np.zeros((ny, nx))
        if layer.power_plan is not None:
            raster = layer.power_plan.rasterize(i1 - i0, j1 - j0)
            total = layer.power_plan.total_power
            # Guard: NaN power used to vanish silently here (NaN > 0 is
            # False), solving an unpowered stack without complaint.
            if (
                not np.all(np.isfinite(raster))
                or not np.isfinite(total)
                or (raster.size and raster.min() < 0)
                or total < 0
            ):
                raise GuardViolation(
                    f"layer {layer.name!r} has a non-finite or negative "
                    "power map",
                    guard="power-map",
                )
            if raster.sum() > 0:
                q_map[j0:j1, i0:i1] = raster / raster.sum() * total
        layer_planes[layer.name] = (z, z + layer.divisions)
        if layer.name.startswith(_DIE_LAYER_PREFIXES):
            die_layers.append(layer.name)
        for _ in range(layer.divisions):
            plane_k.append(k_map)
            plane_c.append(c_map)
            plane_dz.append(layer.thickness_m / layer.divisions)
            plane_q.append(q_map / layer.divisions)
        z += layer.divisions

    nz = z
    k = np.stack(plane_k)          # (nz, ny, nx)
    c = np.stack(plane_c)          # (nz, ny, nx)
    dz = np.asarray(plane_dz)      # (nz,)
    q = np.stack(plane_q)          # (nz, ny, nx), W per cell

    dx = stack.domain_size_m / nx
    dy = stack.domain_size_m / ny

    def index(zz: np.ndarray, jj: np.ndarray, ii: np.ndarray) -> np.ndarray:
        return (zz * ny + jj) * nx + ii

    n_cells = nz * ny * nx
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    diag = np.zeros(n_cells)
    rhs = (q.ravel()).astype(float).copy()

    zz, jj, ii = np.meshgrid(
        np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
    )

    def couple(g: np.ndarray, idx_a: np.ndarray, idx_b: np.ndarray) -> None:
        """Add a symmetric conductive coupling g between cell pairs."""
        rows.append(idx_a)
        cols.append(idx_b)
        vals.append(-g)
        rows.append(idx_b)
        cols.append(idx_a)
        vals.append(-g)
        np.add.at(diag, idx_a, g)
        np.add.at(diag, idx_b, g)

    # X-direction faces.
    ka = k[:, :, :-1]
    kb = k[:, :, 1:]
    g_x = (dz[:, None, None] * dy) / (dx / (2 * ka) + dx / (2 * kb))
    couple(
        g_x.ravel(),
        index(zz[:, :, :-1], jj[:, :, :-1], ii[:, :, :-1]).ravel(),
        index(zz[:, :, 1:], jj[:, :, 1:], ii[:, :, 1:]).ravel(),
    )

    # Y-direction faces.
    ka = k[:, :-1, :]
    kb = k[:, 1:, :]
    g_y = (dz[:, None, None] * dx) / (dy / (2 * ka) + dy / (2 * kb))
    couple(
        g_y.ravel(),
        index(zz[:, :-1, :], jj[:, :-1, :], ii[:, :-1, :]).ravel(),
        index(zz[:, 1:, :], jj[:, 1:, :], ii[:, 1:, :]).ravel(),
    )

    # Z-direction faces.
    ka = k[:-1]
    kb = k[1:]
    dza = dz[:-1, None, None]
    dzb = dz[1:, None, None]
    g_z = (dx * dy) / (dza / (2 * ka) + dzb / (2 * kb))
    couple(
        g_z.ravel(),
        index(zz[:-1], jj[:-1], ii[:-1]).ravel(),
        index(zz[1:], jj[1:], ii[1:]).ravel(),
    )

    # Convective boundaries (Robin): half-cell conduction in series with h.
    area = dx * dy
    for plane, h in ((0, config.heatsink_h), (nz - 1, config.motherboard_h)):
        g_b = area / (dz[plane] / (2 * k[plane]) + 1.0 / h)
        idx = index(
            np.full((ny, nx), plane), jj[0], ii[0]
        ).ravel()
        np.add.at(diag, idx, g_b.ravel())
        np.add.at(rhs, idx, (g_b * config.ambient_c).ravel())

    all_rows = np.concatenate(rows + [np.arange(n_cells)])
    all_cols = np.concatenate(cols + [np.arange(n_cells)])
    all_vals = np.concatenate(vals + [diag])
    matrix = sp.csc_matrix(
        (all_vals, (all_rows, all_cols)), shape=(n_cells, n_cells)
    )

    mass = (c * (dx * dy) * dz[:, None, None]).ravel()  # rho c V, J/K
    return DiscreteSystem(
        matrix=matrix,
        rhs=rhs,
        mass=mass,
        shape=(nz, ny, nx),
        layer_planes=layer_planes,
        die_region=(j0, j1, i0, i1),
        die_layers=die_layers,
        stack=stack,
        config=config,
    )


def solve_steady_state(
    stack: ThermalStack, config: Optional[SolverConfig] = None
) -> ThermalSolution:
    """Solve a stack for its steady-state temperature field.

    Args:
        stack: The configuration to solve.
        config: Discretization/boundary parameters (defaults are calibrated
            for the paper's desktop package).

    Returns:
        A :class:`ThermalSolution` with its :attr:`~ThermalSolution.residual`
        populated.

    Raises:
        SolverDivergenceError: the factorization failed or the solve
            produced non-finite temperatures (previously these escaped
            as silent garbage fields).
    """
    system = assemble_system(stack, config)
    # The system is SPD; SuperLU with a symmetric minimum-degree ordering
    # is ~4x faster here than the default COLAMD ordering.
    try:
        lu = spla.splu(system.matrix, permc_spec="MMD_AT_PLUS_A")
    except RuntimeError as exc:
        raise SolverDivergenceError(
            f"LU factorization failed: {exc}", method="lu"
        ) from exc
    flat = lu.solve(system.rhs)
    if not np.all(np.isfinite(flat)):
        raise SolverDivergenceError(
            "LU solve produced non-finite temperatures", method="lu"
        )
    solution = system.solution_from(flat)
    solution.residual = relative_residual(system.matrix, flat, system.rhs)
    return solution
