"""Steady-state finite-volume solver for the stacked-die heat equation.

Solves the steady form of the paper's Equation (1),

    div( K(x) grad T ) + Q(x) = 0,

on a structured grid over the full package cross-section, with Equation
(2)'s convective (Robin) boundary conditions on the heat-sink and
motherboard faces and adiabatic side walls.  The domain is the lateral
package extent; each :class:`~repro.thermal.stack.Layer` contributes one or
more grid planes with its own (two-region) conductivity, and power maps are
injected into the layers that carry floorplans.

The discrete system is symmetric positive definite and is solved directly
with a sparse LU factorization.

Assembly and factorization depend only on the stack *geometry* (layers,
materials, grid, boundary coefficients) — never on the power maps, which
enter through the right-hand side alone.  Both are therefore cached per
geometry key (see :func:`geometry_key`): sweeping power maps over a fixed
stack, the dominant use in the paper's studies, re-solves with a cached
factorization and only rebuilds the cheap power vector.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.oracles.config import get_oracle_config
from repro.oracles.integrity import crc32_of_arrays
from repro.oracles.invariants import (
    check_energy_conservation,
    check_temperature_bounds,
)
from repro.oracles.report import record_check, record_violation
from repro.resilience.errors import GuardViolation, SolverDivergenceError
from repro.resilience.guards import relative_residual
from repro.thermal.materials import AMBIENT_C, HEATSINK_H_EFF, MOTHERBOARD_H
from repro.thermal.stack import ThermalStack


@dataclass(frozen=True)
class SolverConfig:
    """Discretization and boundary parameters.

    Attributes:
        nx: Lateral grid cells in x (the domain is square; ny = nx unless
            overridden).
        ny: Lateral grid cells in y.
        ambient_c: Ambient temperature, Celsius (Equation 2's T_amb).
        heatsink_h: Effective heat-transfer coefficient on the heat-sink
            face, W/(m^2 K) — lumps the fin array and forced airflow.
        motherboard_h: Natural-convection coefficient on the board back.
    """

    nx: int = 48
    ny: int = 48
    ambient_c: float = AMBIENT_C
    heatsink_h: float = HEATSINK_H_EFF
    motherboard_h: float = MOTHERBOARD_H

    def __post_init__(self) -> None:
        if self.nx < 4 or self.ny < 4:
            raise ValueError("grid must be at least 4x4")
        if self.heatsink_h <= 0 or self.motherboard_h <= 0:
            raise ValueError("heat-transfer coefficients must be positive")


@dataclass
class ThermalSolution:
    """Result of a steady-state solve.

    Attributes:
        temperature: Temperatures in Celsius, shape ``(nz, ny, nx)``, plane
            0 at the heat-sink face.
        stack: The solved configuration.
        config: Solver configuration used.
        layer_planes: Maps layer name to its ``(z_start, z_end)`` plane
            range (end exclusive).
        die_region: ``(j0, j1, i0, i1)`` cell bounds of the die footprint.
        residual: Relative residual ``||Ax - b|| / ||b||`` of the linear
            solve that produced this field.
        method: Solver that produced it (``"lu"``, ``"cg"``, or a
            ``*-coarse`` fallback rung).
        degraded: True if a fallback rung solved a coarser grid than was
            requested (see :mod:`repro.resilience.policy`).
    """

    temperature: np.ndarray
    stack: ThermalStack
    config: SolverConfig
    layer_planes: Dict[str, Tuple[int, int]]
    die_region: Tuple[int, int, int, int]
    _die_layer_names: List[str] = field(default_factory=list)
    residual: float = 0.0
    method: str = "lu"
    degraded: bool = False

    # -- queries -----------------------------------------------------------

    def solver_info(self) -> Dict[str, Any]:
        """How this field was produced: residual, method, degraded flag.

        Experiment results embed this dict so a fallback-ladder solve
        (see :mod:`repro.resilience.policy`) stays visible in campaign
        reports instead of silently blending with exact solves.
        """
        return {
            "residual": float(self.residual),
            "method": self.method,
            "degraded": bool(self.degraded),
        }

    def layer_temperature(self, name: str) -> np.ndarray:
        """Full-domain temperature slab of a layer, shape (planes, ny, nx)."""
        z0, z1 = self.layer_planes[name]
        return self.temperature[z0:z1]

    def die_map(self, name: str) -> np.ndarray:
        """Die-footprint temperature map of a layer (averaged over planes)."""
        j0, j1, i0, i1 = self.die_region
        return self.layer_temperature(name)[:, j0:j1, i0:i1].mean(axis=0)

    def layer_peak(self, name: str) -> float:
        """Hottest cell in a layer (die region only), Celsius."""
        return float(self.die_map(name).max())

    @property
    def die_layer_names(self) -> List[str]:
        """Names of layers belonging to the silicon die stack."""
        return list(self._die_layer_names)

    def peak_temperature(self) -> float:
        """Hottest on-die temperature across all die-stack layers, Celsius."""
        return max(self.layer_peak(name) for name in self._die_layer_names)

    def coolest_on_die(self) -> float:
        """Coldest temperature within the die footprint, Celsius."""
        return min(
            float(self.die_map(name).min()) for name in self._die_layer_names
        )

    def hottest_layer(self) -> str:
        """Name of the die-stack layer containing the global hotspot."""
        peaks = {name: self.layer_peak(name) for name in self._die_layer_names}
        return max(peaks, key=peaks.get)

    def boundary_heat_flow(self, per_face: bool = False):
        """Heat leaving through the convective boundaries, W.

        Conservation check: at steady state the total equals the injected
        power.  The per-cell conductance uses the same two-region
        conductivity map as the assembly (die material inside the
        footprint, fill material outside) — using the in-die conductivity
        uniformly, as an earlier version did, misstates the flow whenever
        a two-region layer sits on a boundary face (e.g. a flipped stack
        with a die layer at the board side).

        Args:
            per_face: If True, return ``{"heatsink": W, "motherboard": W}``
                instead of the total.
        """
        nz, ny, nx = self.temperature.shape
        dx = self.stack.domain_size_m / nx
        dy = self.stack.domain_size_m / ny
        area = dx * dy
        j0, j1, i0, i1 = self.die_region
        flows: Dict[str, float] = {}
        for face, z, layer, h in (
            ("heatsink", 0, self.stack.layers[0], self.config.heatsink_h),
            (
                "motherboard",
                nz - 1,
                self.stack.layers[-1],
                self.config.motherboard_h,
            ),
        ):
            dz = layer.thickness_m / layer.divisions
            k = np.full((ny, nx), layer.material_out.conductivity)
            k[j0:j1, i0:i1] = layer.material_in.conductivity
            # Series conductance: half-cell conduction + surface convection
            # (identical to the assembled Robin term, so the check closes
            # to solver precision).
            g = area / (dz / (2.0 * k) + 1.0 / h)
            flows[face] = float(
                np.sum(g * (self.temperature[z] - self.config.ambient_c))
            )
        if per_face:
            return flows
        return flows["heatsink"] + flows["motherboard"]


def _die_region_cells(
    stack: ThermalStack, nx: int, ny: int
) -> Tuple[int, int, int, int]:
    """Cell index bounds (j0, j1, i0, i1) of the centred die footprint."""
    dx = stack.domain_size_m / nx
    dy = stack.domain_size_m / ny
    ncx = max(2, int(round(stack.die_width_m / dx)))
    ncy = max(2, int(round(stack.die_height_m / dy)))
    ncx = min(ncx, nx)
    ncy = min(ncy, ny)
    i0 = (nx - ncx) // 2
    j0 = (ny - ncy) // 2
    return j0, j0 + ncy, i0, i0 + ncx


_DIE_LAYER_PREFIXES = ("bulk-si", "metal", "bond")


def geometry_key(
    stack: ThermalStack, config: SolverConfig
) -> Tuple[Any, ...]:
    """Hashable key capturing everything the operator depends on.

    Two (stack, config) pairs with equal keys assemble the *same* matrix,
    mass vector, and ambient boundary vector — power plans are explicitly
    excluded because they only shape the power part of the right-hand
    side.  Anything that feeds the assembly MUST appear here: layer
    names/thicknesses/divisions, both region materials (name alone is not
    enough — :meth:`Layer.with_conductivity` synthesizes materials, so
    the numeric properties are keyed too), die and domain extents, grid
    size, and the three boundary parameters.
    """
    layers = tuple(
        (
            layer.name,
            layer.thickness_m,
            layer.divisions,
            layer.material_in.name,
            layer.material_in.conductivity,
            layer.material_in.volumetric_heat_capacity,
            layer.material_out.name,
            layer.material_out.conductivity,
            layer.material_out.volumetric_heat_capacity,
        )
        for layer in stack.layers
    )
    return (
        layers,
        stack.die_width_m,
        stack.die_height_m,
        stack.domain_size_m,
        config.nx,
        config.ny,
        config.ambient_c,
        config.heatsink_h,
        config.motherboard_h,
    )


@dataclass
class ThermalOperator:
    """The geometry-dependent (power-independent) part of one system.

    Everything here is a pure function of :func:`geometry_key`, so one
    operator is shared by every solve over the same stack geometry.  The
    steady LU factorization and backward-Euler factorizations (one per
    time step) are attached lazily the first time a solver needs them.

    Cached operators are shared: callers must treat ``matrix``, ``mass``,
    and ``boundary_rhs`` as read-only.
    """

    key: Tuple[Any, ...]
    matrix: sp.csc_matrix
    mass: np.ndarray
    boundary_rhs: np.ndarray
    shape: Tuple[int, int, int]
    layer_planes: Dict[str, Tuple[int, int]]
    die_region: Tuple[int, int, int, int]
    die_layers: List[str]
    steady_lu: Optional[Any] = None
    transient_lus: Dict[float, Any] = field(default_factory=dict)
    #: crc32 over the geometry arrays at cache-insertion time; the
    #: operator-integrity oracle rechecks it on reuse (every reuse in
    #: strict mode) to catch in-memory corruption of the cached entry.
    crc: int = 0
    #: Number of times this entry was served from the cache.
    reuse_count: int = 0
    #: True once a differential re-assembly confirmed the cached entry
    #: matches a from-scratch build for its key (done once per geometry).
    assembly_verified: bool = False


#: Geometry-keyed operator cache, LRU over :data:`_OPERATOR_CACHE_MAX`
#: distinct geometries.  Entries are immutable w.r.t. power sweeps; the
#: cache must only be cleared when memory pressure matters (each fine-grid
#: LU holds tens of MB).
_OPERATOR_CACHE: "OrderedDict[Tuple[Any, ...], ThermalOperator]" = OrderedDict()
_OPERATOR_CACHE_MAX = 8
_CACHE_STATS = {"hits": 0, "misses": 0}

#: Backward-Euler factorizations kept per operator (one per distinct dt).
_TRANSIENT_LU_MAX = 4


def operator_cache_stats() -> Dict[str, int]:
    """Cache effectiveness counters (for benchmarks and tests)."""
    return {
        "hits": _CACHE_STATS["hits"],
        "misses": _CACHE_STATS["misses"],
        "size": len(_OPERATOR_CACHE),
        "max_size": _OPERATOR_CACHE_MAX,
    }


def clear_operator_cache() -> None:
    """Drop all cached operators and factorizations, and zero the stats."""
    _OPERATOR_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


#: One-shot corruption hook consumed on the next operator-cache hit
#: (chaos testing: models a bit flip landing in a cached array while it
#: sat in memory).  Armed via :func:`arm_operator_corruption`.
_CORRUPTION_HOOK: Optional[Any] = None


def arm_operator_corruption(hook: Any) -> None:
    """Arm a one-shot hook(operator) fired on the next cache hit.

    Fault-injection only: the campaign chaos mode ``flip-operator`` uses
    this to flip bits inside a cached operator's arrays and prove the
    operator-integrity oracle detects them.  The hook runs *before* the
    oracle checks, exactly like real silent corruption would.
    """
    global _CORRUPTION_HOOK
    _CORRUPTION_HOOK = hook


def _operator_crc(operator: ThermalOperator) -> int:
    """Integrity fingerprint over the geometry-dependent arrays."""
    return crc32_of_arrays(
        (
            operator.matrix.data,
            operator.matrix.indices,
            operator.matrix.indptr,
            operator.mass,
            operator.boundary_rhs,
        )
    )


def _operator_arrays_equal(a: ThermalOperator, b: ThermalOperator) -> bool:
    """Bitwise equality of two operators' geometry arrays."""
    return (
        np.array_equal(a.matrix.data, b.matrix.data)
        and np.array_equal(a.matrix.indices, b.matrix.indices)
        and np.array_equal(a.matrix.indptr, b.matrix.indptr)
        and np.array_equal(a.mass, b.mass)
        and np.array_equal(a.boundary_rhs, b.boundary_rhs)
    )


def _quarantine_operator(
    stack: ThermalStack,
    config: SolverConfig,
    key: Tuple[Any, ...],
    detail: str,
    oracle: str,
) -> ThermalOperator:
    """Drop a corrupt cached entry, record the violation, rebuild fresh."""
    record_violation(oracle, "thermal", detail, action="quarantined-entry")
    _OPERATOR_CACHE.pop(key, None)
    fresh = _assemble_operator(stack, config, key)
    fresh.crc = _operator_crc(fresh)
    fresh.assembly_verified = True  # it IS the from-scratch build
    _OPERATOR_CACHE[key] = fresh
    return fresh


def _verify_cached_operator(
    stack: ThermalStack,
    config: SolverConfig,
    key: Tuple[Any, ...],
    operator: ThermalOperator,
) -> ThermalOperator:
    """Oracle pass over a cache hit; returns the (possibly fresh) operator.

    Two checks, never raising:

    * **Integrity** — recompute the crc32 stored at insertion.  Checked
      on the first reuse, then every ``sample_stride``-th reuse (every
      reuse in strict mode).  A mismatch means the cached arrays were
      corrupted in memory: the entry is quarantined and reassembled.
    * **Differential** — once per geometry, re-run the full assembly
      and compare bitwise, catching a stale/colliding cache entry.
    """
    global _CORRUPTION_HOOK
    if _CORRUPTION_HOOK is not None:
        hook, _CORRUPTION_HOOK = _CORRUPTION_HOOK, None
        hook(operator)
    cfg = get_oracle_config()
    if not cfg.enabled:
        return operator
    operator.reuse_count += 1
    check_crc = (
        cfg.strict
        or operator.reuse_count == 1
        or operator.reuse_count % cfg.sample_stride == 0
    )
    if check_crc:
        record_check("thermal.operator-crc")
        if _operator_crc(operator) != operator.crc:
            return _quarantine_operator(
                stack,
                config,
                key,
                "cached thermal operator failed its crc32 integrity "
                f"recheck on reuse {operator.reuse_count}",
                "thermal.operator-crc",
            )
    if not operator.assembly_verified:
        record_check("thermal.operator-differential")
        fresh = _assemble_operator(stack, config, key)
        if not _operator_arrays_equal(operator, fresh):
            return _quarantine_operator(
                stack,
                config,
                key,
                "cached thermal operator differs from a from-scratch "
                "assembly for the same geometry key",
                "thermal.operator-differential",
            )
        operator.assembly_verified = True
    return operator


@dataclass
class DiscreteSystem:
    """The assembled finite-volume system of one stack/config pair.

    ``matrix @ T = rhs`` is the steady-state balance; *mass* holds each
    cell's heat capacity (rho c V, J/K) for the transient solver.  The
    rhs is the exact element-wise sum ``power_rhs + boundary_rhs`` — the
    power injection and the ambient (Robin) terms never overlap in a
    single cell's contribution order, so the split is bitwise equal to
    assembling them together.
    """

    matrix: sp.csc_matrix
    rhs: np.ndarray
    mass: np.ndarray
    shape: Tuple[int, int, int]
    layer_planes: Dict[str, Tuple[int, int]]
    die_region: Tuple[int, int, int, int]
    die_layers: List[str]
    stack: ThermalStack
    config: SolverConfig
    power_rhs: Optional[np.ndarray] = None
    boundary_rhs: Optional[np.ndarray] = None
    operator: Optional[ThermalOperator] = None

    def solution_from(self, temperature_flat: np.ndarray) -> ThermalSolution:
        """Wrap a flat temperature vector as a :class:`ThermalSolution`."""
        return ThermalSolution(
            temperature=temperature_flat.reshape(self.shape),
            stack=self.stack,
            config=self.config,
            layer_planes=self.layer_planes,
            die_region=self.die_region,
            _die_layer_names=list(self.die_layers),
        )


def _assemble_operator(
    stack: ThermalStack, config: SolverConfig, key: Tuple[Any, ...]
) -> ThermalOperator:
    """Build the geometry-dependent operator: matrix, mass, ambient rhs."""
    nx, ny = config.nx, config.ny
    j0, j1, i0, i1 = _die_region_cells(stack, nx, ny)

    # Expand layers into grid planes.
    plane_k: List[np.ndarray] = []   # conductivity per plane, (ny, nx)
    plane_c: List[np.ndarray] = []   # volumetric heat capacity, (ny, nx)
    plane_dz: List[float] = []
    layer_planes: Dict[str, Tuple[int, int]] = {}
    die_layers: List[str] = []
    z = 0
    for layer in stack.layers:
        k_map = np.full((ny, nx), layer.material_out.conductivity)
        k_map[j0:j1, i0:i1] = layer.material_in.conductivity
        c_map = np.full(
            (ny, nx), layer.material_out.volumetric_heat_capacity
        )
        c_map[j0:j1, i0:i1] = layer.material_in.volumetric_heat_capacity
        layer_planes[layer.name] = (z, z + layer.divisions)
        if layer.name.startswith(_DIE_LAYER_PREFIXES):
            die_layers.append(layer.name)
        for _ in range(layer.divisions):
            plane_k.append(k_map)
            plane_c.append(c_map)
            plane_dz.append(layer.thickness_m / layer.divisions)
        z += layer.divisions

    nz = z
    k = np.stack(plane_k)          # (nz, ny, nx)
    c = np.stack(plane_c)          # (nz, ny, nx)
    dz = np.asarray(plane_dz)      # (nz,)

    dx = stack.domain_size_m / nx
    dy = stack.domain_size_m / ny

    def index(zz: np.ndarray, jj: np.ndarray, ii: np.ndarray) -> np.ndarray:
        return (zz * ny + jj) * nx + ii

    n_cells = nz * ny * nx
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    diag = np.zeros(n_cells)
    boundary_rhs = np.zeros(n_cells)

    zz, jj, ii = np.meshgrid(
        np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
    )

    def couple(g: np.ndarray, idx_a: np.ndarray, idx_b: np.ndarray) -> None:
        """Add a symmetric conductive coupling g between cell pairs."""
        rows.append(idx_a)
        cols.append(idx_b)
        vals.append(-g)
        rows.append(idx_b)
        cols.append(idx_a)
        vals.append(-g)
        np.add.at(diag, idx_a, g)
        np.add.at(diag, idx_b, g)

    # X-direction faces.
    ka = k[:, :, :-1]
    kb = k[:, :, 1:]
    g_x = (dz[:, None, None] * dy) / (dx / (2 * ka) + dx / (2 * kb))
    couple(
        g_x.ravel(),
        index(zz[:, :, :-1], jj[:, :, :-1], ii[:, :, :-1]).ravel(),
        index(zz[:, :, 1:], jj[:, :, 1:], ii[:, :, 1:]).ravel(),
    )

    # Y-direction faces.
    ka = k[:, :-1, :]
    kb = k[:, 1:, :]
    g_y = (dz[:, None, None] * dx) / (dy / (2 * ka) + dy / (2 * kb))
    couple(
        g_y.ravel(),
        index(zz[:, :-1, :], jj[:, :-1, :], ii[:, :-1, :]).ravel(),
        index(zz[:, 1:, :], jj[:, 1:, :], ii[:, 1:, :]).ravel(),
    )

    # Z-direction faces.
    ka = k[:-1]
    kb = k[1:]
    dza = dz[:-1, None, None]
    dzb = dz[1:, None, None]
    g_z = (dx * dy) / (dza / (2 * ka) + dzb / (2 * kb))
    couple(
        g_z.ravel(),
        index(zz[:-1], jj[:-1], ii[:-1]).ravel(),
        index(zz[1:], jj[1:], ii[1:]).ravel(),
    )

    # Convective boundaries (Robin): half-cell conduction in series with h.
    area = dx * dy
    for plane, h in ((0, config.heatsink_h), (nz - 1, config.motherboard_h)):
        g_b = area / (dz[plane] / (2 * k[plane]) + 1.0 / h)
        idx = index(
            np.full((ny, nx), plane), jj[0], ii[0]
        ).ravel()
        np.add.at(diag, idx, g_b.ravel())
        np.add.at(boundary_rhs, idx, (g_b * config.ambient_c).ravel())

    all_rows = np.concatenate(rows + [np.arange(n_cells)])
    all_cols = np.concatenate(cols + [np.arange(n_cells)])
    all_vals = np.concatenate(vals + [diag])
    matrix = sp.csc_matrix(
        (all_vals, (all_rows, all_cols)), shape=(n_cells, n_cells)
    )

    mass = (c * (dx * dy) * dz[:, None, None]).ravel()  # rho c V, J/K
    return ThermalOperator(
        key=key,
        matrix=matrix,
        mass=mass,
        boundary_rhs=boundary_rhs,
        shape=(nz, ny, nx),
        layer_planes=layer_planes,
        die_region=(j0, j1, i0, i1),
        die_layers=die_layers,
    )


def _power_rhs(stack: ThermalStack, operator: ThermalOperator) -> np.ndarray:
    """The injected-power part of the right-hand side, W per cell.

    Rebuilt on every assembly (it is cheap and carries everything the
    cached operator deliberately excludes), including the power-map
    validity guard.
    """
    nz, ny, nx = operator.shape
    j0, j1, i0, i1 = operator.die_region
    plane_q: List[np.ndarray] = []
    for layer in stack.layers:
        q_map = np.zeros((ny, nx))
        if layer.power_plan is not None:
            raster = layer.power_plan.rasterize(i1 - i0, j1 - j0)
            total = layer.power_plan.total_power
            # Guard: NaN power used to vanish silently here (NaN > 0 is
            # False), solving an unpowered stack without complaint.
            if (
                not np.all(np.isfinite(raster))
                or not np.isfinite(total)
                or (raster.size and raster.min() < 0)
                or total < 0
            ):
                raise GuardViolation(
                    f"layer {layer.name!r} has a non-finite or negative "
                    "power map",
                    guard="power-map",
                )
            if raster.sum() > 0:
                q_map[j0:j1, i0:i1] = raster / raster.sum() * total
        for _ in range(layer.divisions):
            plane_q.append(q_map / layer.divisions)
    return np.stack(plane_q).ravel()


def assemble_system(
    stack: ThermalStack,
    config: Optional[SolverConfig] = None,
    reuse_operator: bool = True,
) -> DiscreteSystem:
    """Discretize a stack into its finite-volume system.

    The geometry-dependent operator (matrix, mass, ambient boundary rhs)
    is served from the per-geometry LRU cache when available; only the
    power vector is rebuilt.  Pass ``reuse_operator=False`` to force a
    from-scratch assembly that bypasses the cache entirely (benchmarks
    use this to time the cold path).
    """
    config = config or SolverConfig()
    key = geometry_key(stack, config)
    operator = _OPERATOR_CACHE.get(key) if reuse_operator else None
    if operator is not None:
        _OPERATOR_CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        operator = _verify_cached_operator(stack, config, key, operator)
    else:
        operator = _assemble_operator(stack, config, key)
        if reuse_operator:
            _CACHE_STATS["misses"] += 1
            operator.crc = _operator_crc(operator)
            _OPERATOR_CACHE[key] = operator
            while len(_OPERATOR_CACHE) > _OPERATOR_CACHE_MAX:
                _OPERATOR_CACHE.popitem(last=False)

    power_rhs = _power_rhs(stack, operator)
    # Bitwise equal to assembling power and boundary into one vector: a
    # boundary cell's rhs is exactly one ambient term added to its power.
    rhs = power_rhs + operator.boundary_rhs
    return DiscreteSystem(
        matrix=operator.matrix,
        rhs=rhs,
        mass=operator.mass,
        shape=operator.shape,
        layer_planes=dict(operator.layer_planes),
        die_region=operator.die_region,
        die_layers=list(operator.die_layers),
        stack=stack,
        config=config,
        power_rhs=power_rhs,
        boundary_rhs=operator.boundary_rhs,
        operator=operator,
    )


def solve_steady_state(
    stack: ThermalStack, config: Optional[SolverConfig] = None
) -> ThermalSolution:
    """Solve a stack for its steady-state temperature field.

    Args:
        stack: The configuration to solve.
        config: Discretization/boundary parameters (defaults are calibrated
            for the paper's desktop package).

    Returns:
        A :class:`ThermalSolution` with its :attr:`~ThermalSolution.residual`
        populated.

    Raises:
        SolverDivergenceError: the factorization failed or the solve
            produced non-finite temperatures (previously these escaped
            as silent garbage fields).
    """
    system = assemble_system(stack, config)
    operator = system.operator
    lu = operator.steady_lu if operator is not None else None
    if lu is None:
        # The system is SPD; SuperLU with a symmetric minimum-degree
        # ordering is ~4x faster here than the default COLAMD ordering.
        try:
            lu = spla.splu(system.matrix, permc_spec="MMD_AT_PLUS_A")
        except RuntimeError as exc:
            raise SolverDivergenceError(
                f"LU factorization failed: {exc}", method="lu"
            ) from exc
        if operator is not None:
            operator.steady_lu = lu
    flat = lu.solve(system.rhs)
    if not np.all(np.isfinite(flat)):
        raise SolverDivergenceError(
            "LU solve produced non-finite temperatures", method="lu"
        )
    solution = system.solution_from(flat)
    solution.residual = relative_residual(system.matrix, flat, system.rhs)
    _steady_solution_oracles(system, solution)
    return solution


def _steady_solution_oracles(
    system: DiscreteSystem, solution: "ThermalSolution"
) -> None:
    """Online invariant oracles over a direct steady solve (never raise).

    Three cheap checks (Section 2.3 physics): the linear residual is
    within tolerance, every watt injected leaves through the boundary
    faces, and no cell sits below ambient or above the damage ceiling.
    A trip records a violation and marks the solution degraded; the
    numbers are still returned so a campaign completes degraded instead
    of crashing.
    """
    cfg = get_oracle_config()
    if not cfg.enabled:
        return
    problems: List[str] = []
    record_check("thermal.residual")
    if not (solution.residual <= cfg.residual_tol):
        problems.append(
            f"steady residual {solution.residual:.3g} above "
            f"tolerance {cfg.residual_tol:.3g}"
        )
    record_check("thermal.conservation")
    power_w = float(system.power_rhs.sum()) if system.power_rhs is not None \
        else float("nan")
    problems += check_energy_conservation(
        solution.boundary_heat_flow(), power_w, cfg.conservation_rtol
    )
    record_check("thermal.bounds")
    problems += check_temperature_bounds(
        float(solution.temperature.min()),
        float(solution.temperature.max()),
        system.config.ambient_c,
        cfg.temp_slack_c,
    )
    for problem in problems:
        record_violation("thermal.steady", "thermal", problem)
    if problems:
        solution.degraded = True
