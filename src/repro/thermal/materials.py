"""Material properties for the 3D stack thermal model.

The die-stack constants are taken verbatim from Table 2 of the paper; the
package-level materials (TIM, IHS, substrate, socket, motherboard) are
standard desktop-package values, calibrated so the baseline planar
Core 2 Duo solve lands at the paper's published operating point
(88.35 C peak / 59 C coolest at 92 W, 40 C ambient — Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Material:
    """A homogeneous material in the thermal model.

    Attributes:
        name: Identifier.
        conductivity: Thermal conductivity, W/(m K).
        volumetric_heat_capacity: rho*c, J/(m^3 K) — used only by the
            transient solver (Equation 1's time term).
    """

    name: str
    conductivity: float
    volumetric_heat_capacity: float = 1.6e6

    def __post_init__(self) -> None:
        if self.conductivity <= 0:
            raise ValueError(
                f"material {self.name!r} must have positive conductivity, "
                f"got {self.conductivity}"
            )
        if self.volumetric_heat_capacity <= 0:
            raise ValueError(
                f"material {self.name!r} must have positive heat capacity"
            )


#: Ambient temperature used throughout the paper's analysis, Celsius (Table 2).
AMBIENT_C = 40.0

#: Table 2 constants, verbatim.  Thicknesses in micrometres, conductivities
#: in W/(m K).
TABLE2_CONSTANTS: Dict[str, float] = {
    "si1_thickness_um": 750.0,   # bulk Si of the die next to the heat sink
    "si2_thickness_um": 20.0,    # bulk Si of the die next to the bumps
    "si_conductivity": 120.0,
    "cu_metal_thickness_um": 12.0,   # logic metal stack
    "cu_metal_conductivity": 12.0,   # accounts for low-k dielectric + vias
    "al_metal_thickness_um": 2.0,    # DRAM metal stack
    "al_metal_conductivity": 9.0,
    "bond_thickness_um": 15.0,       # die-to-die bonding layer
    "bond_conductivity": 60.0,       # accounts for cavities + d2d via density
    "heat_sink_conductivity": 400.0,
    "ambient_c": AMBIENT_C,
}

#: Named materials used by the stack builders.
MATERIALS: Dict[str, Material] = {
    # -- Table 2 die-stack materials --------------------------------------
    "bulk-si": Material("bulk-si", TABLE2_CONSTANTS["si_conductivity"], 1.63e6),
    "cu-metal": Material("cu-metal", TABLE2_CONSTANTS["cu_metal_conductivity"]),
    "al-metal": Material("al-metal", TABLE2_CONSTANTS["al_metal_conductivity"]),
    "bond": Material("bond", TABLE2_CONSTANTS["bond_conductivity"]),
    "heat-sink": Material("heat-sink", TABLE2_CONSTANTS["heat_sink_conductivity"], 2.43e6),
    # -- Package-level materials (calibrated desktop package) -------------
    "ihs-copper": Material("ihs-copper", 390.0, 3.45e6),
    "tim": Material("tim", 10.0),           # thermal interface material
    "underfill": Material("underfill", 1.5),  # C4 bumps + underfill
    "package": Material("package", 15.0),   # organic substrate w/ Cu planes
    "socket": Material("socket", 0.3),
    "motherboard": Material("motherboard", 0.8),
    "epoxy-fillet": Material("epoxy-fillet", 0.8),  # fill around die edges
    "air-gap": Material("air-gap", 0.05),
}


def get_material(name: str) -> Material:
    """Look up a material by name, raising a clear error for typos."""
    try:
        return MATERIALS[name]
    except KeyError:
        raise KeyError(
            f"unknown material {name!r}; known: {sorted(MATERIALS)}"
        ) from None


#: Effective heat-transfer coefficient of the forced-convection heat sink,
#: W/(m^2 K), lumped onto the sink's base-plate footprint.  Calibrated so
#: the 92 W planar baseline peaks at ~88 C (Figure 6).
HEATSINK_H_EFF = 5400.0

#: Natural-convection coefficient on the motherboard back side, W/(m^2 K).
MOTHERBOARD_H = 10.0

#: Lateral extent of the package/heat-sink thermal domain, metres.  The die
#: sits centred in this domain; the extra area provides heat-spreading paths
#: through the IHS and heat sink.
DOMAIN_SIZE_M = 0.034
