"""Transient thermal solver — Equation (1) with its time term.

The paper solves the steady heat-conduction problem; its Equation (1)
is written with the full ``rho c dT/dt`` term, so this module implements
it too: an implicit (backward-Euler) integration of

    M dT/dt = -A T + b,

where A/b are the steady finite-volume operator and source from
:func:`repro.thermal.solver.assemble_system` and M is the lumped cell
heat capacity.  Backward Euler is unconditionally stable, so time steps
can span the stack's fast (die) and slow (heat sink) time constants.

Use cases: power-on warm-up curves, power-step response (e.g. a DVFS
transition from Table 5), and verifying that transients decay to the
steady solution.

Long integrations can snapshot their state every ``checkpoint_every``
steps and resume from the latest snapshot after an interruption; each
step's output is guarded against divergence (non-finite temperatures
raise :class:`~repro.resilience.errors.SolverDivergenceError` instead of
silently propagating NaN to the end of the run).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.oracles.config import get_oracle_config
from repro.oracles.invariants import check_temperature_bounds
from repro.oracles.report import record_check, record_violation
from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from repro.resilience.errors import CheckpointError, SolverDivergenceError
from repro.thermal.solver import (
    _TRANSIENT_LU_MAX,
    SolverConfig,
    ThermalSolution,
    assemble_system,
)
from repro.thermal.stack import ThermalStack


@dataclass
class TransientResult:
    """A transient run.

    Attributes:
        times_s: Sample times, seconds.
        peak_c: Peak on-die temperature at each sample.
        final: Full field at the last step.
    """

    times_s: List[float]
    peak_c: List[float]
    final: ThermalSolution

    @property
    def peak_rise(self) -> float:
        """Total peak-temperature rise over the run, Kelvin.

        Negative on a cooling transient (e.g. a DVFS step-down).
        """
        return self.peak_c[-1] - self.peak_c[0]

    def time_to_fraction(self, fraction: float) -> float:
        """First sampled time at which the peak covers *fraction* of its
        total excursion (e.g. 0.63 for one thermal time constant).

        Works for both signs of :attr:`peak_rise`: on a heating run the
        peak must climb to ``start + fraction * rise``; on a cooling run
        (negative rise, e.g. a DVFS step-down) it must *fall* to that
        target.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rise = self.peak_rise
        target = self.peak_c[0] + fraction * rise
        for t, peak in zip(self.times_s, self.peak_c):
            reached = peak >= target if rise >= 0 else peak <= target
            if reached:
                return t
        return self.times_s[-1]


def solve_transient(
    stack: ThermalStack,
    config: Optional[SolverConfig] = None,
    duration_s: float = 10.0,
    dt_s: float = 0.05,
    initial: Optional[np.ndarray] = None,
    power_schedule: Optional[Callable[[float], float]] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    resume_from: Optional[Union[str, Path]] = None,
    reuse_operator: bool = True,
) -> TransientResult:
    """Integrate the stack's temperature field over time.

    Args:
        stack: Configuration to solve.
        config: Discretization parameters.
        duration_s: Simulated time span; must be a whole number of
            *dt_s* steps (the run ends exactly where requested, never a
            silently truncated step short).
        dt_s: Backward-Euler step.
        initial: Starting field (flat or shaped); defaults to uniform
            ambient (a cold power-on).
        power_schedule: Optional multiplier on the dissipated power as a
            function of time; boundary (ambient) terms are unaffected.
            The schedule is piecewise constant per step: it is sampled
            once at each step's *start* time and the returned factor
            applies over ``[t, t + dt)``.  A DVFS step written
            ``lambda t: 0.66 if t >= 5 else 1.0`` therefore takes effect
            exactly on the step beginning at t = 5 (a step boundary when
            dt divides 5), never half a step early.
        checkpoint_every: Snapshot the integration state every this many
            steps (requires *checkpoint_path*).
        checkpoint_path: Where to write snapshots.
        resume_from: Path of a snapshot written by a previous run of the
            *same* stack/config/schedule; integration continues from the
            checkpointed step.
        reuse_operator: Reuse the geometry-keyed cached operator and its
            per-dt backward-Euler factorization (the default).  False
            assembles and factorizes from scratch without touching the
            cache — the reference side of the coupled-loop benchmark.

    Returns:
        A :class:`TransientResult` sampled at every step.

    Raises:
        SolverDivergenceError: a step produced non-finite temperatures.
        CheckpointError: *resume_from* is unusable or incompatible.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and time step must be positive")
    steps = int(round(duration_s / dt_s))
    if steps < 1 or not math.isclose(
        steps * dt_s, duration_s, rel_tol=1e-9, abs_tol=0.0
    ):
        raise ValueError(
            f"dt_s={dt_s:g} does not divide duration_s={duration_s:g}: "
            f"{steps} whole step(s) would cover {steps * dt_s:g} s; pick a "
            f"step that divides the duration so the run ends where requested"
        )
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
    system = assemble_system(stack, config, reuse_operator=reuse_operator)
    ambient = system.config.ambient_c

    n = system.matrix.shape[0]
    # The assembly already delivers the rhs split into power injection and
    # ambient boundary terms (exactly, not by subtraction), so a power
    # schedule can scale only the former.
    power_part = system.power_rhs
    boundary_rhs = system.boundary_rhs

    # One backward-Euler factorization per (geometry, dt) pair; reruns
    # over the same stack (parameter sweeps, resumed runs) skip straight
    # to the time loop.
    operator = system.operator
    lu = operator.transient_lus.get(dt_s) if operator is not None else None
    if lu is None:
        mass_over_dt = sp.diags(system.mass / dt_s)
        lhs = (system.matrix + mass_over_dt).tocsc()
        lu = spla.splu(lhs, permc_spec="MMD_AT_PLUS_A")
        if operator is not None:
            operator.transient_lus[dt_s] = lu
            while len(operator.transient_lus) > _TRANSIENT_LU_MAX:
                operator.transient_lus.pop(
                    next(iter(operator.transient_lus))
                )

    if resume_from is not None:
        # quarantine=True: a checkpoint failing its sha256 envelope is
        # moved to *.quarantined so a retry restarts clean instead of
        # tripping over the same corrupt bytes.
        state = load_checkpoint(resume_from, kind="transient", quarantine=True)
        if state["n"] != n or state["dt_s"] != dt_s:
            raise CheckpointError(
                f"checkpoint {resume_from} was written for n={state['n']}, "
                f"dt={state['dt_s']}; this run has n={n}, dt={dt_s}"
            )
        # Same cell count is not same stack: a checkpoint from a
        # different geometry would be silently accepted on n/dt alone.
        saved_stack = state.get("stack_name")
        if saved_stack is not None and saved_stack != stack.name:
            raise CheckpointError(
                f"checkpoint {resume_from} was written for stack "
                f"{saved_stack!r}; this run solves {stack.name!r}"
            )
        # Duration compatibility: the checkpointed progress must lie
        # within this run's horizon.  (Resuming an interrupted run with
        # the full original duration is the normal case, so the saved
        # target duration may legitimately be shorter than ours.)
        elapsed_s = int(state["step"]) * dt_s
        if int(state["step"]) > steps:
            raise CheckpointError(
                f"checkpoint {resume_from} is {elapsed_s:g} s into its run "
                f"(step {state['step']}); this run ends at "
                f"{duration_s:g} s ({steps} steps) and has nothing to resume"
            )
        temperature = np.asarray(state["temperature"], dtype=float)
        times = list(state["times_s"])
        peaks = list(state["peak_c"])
        start_step = int(state["step"]) + 1
    else:
        if initial is None:
            temperature = np.full(n, ambient)
        else:
            temperature = np.asarray(initial, dtype=float).reshape(n).copy()
        if not np.all(np.isfinite(temperature)):
            raise SolverDivergenceError(
                "initial temperature field is non-finite", method="transient"
            )
        times = [0.0]
        peaks = [float(system.solution_from(temperature).peak_temperature())]
        start_step = 1

    for step in range(start_step, steps + 1):
        t_now = step * dt_s
        # Piecewise-constant convention (see the docstring): the factor
        # for the step spanning (t_now - dt, t_now] is the schedule's
        # value at the step's start, so a step change written with
        # ``t >= boundary`` lands on the step *beginning* there.
        t_start = (step - 1) * dt_s
        factor = power_schedule(t_start) if power_schedule else 1.0
        if factor < 0:
            raise ValueError("power schedule must be non-negative")
        rhs = boundary_rhs + factor * power_part + (system.mass / dt_s) * temperature
        temperature = lu.solve(rhs)
        if not np.all(np.isfinite(temperature)):
            raise SolverDivergenceError(
                f"transient step {step} (t={t_now:g} s) produced non-finite "
                "temperatures",
                method="transient",
                partial={"step": step, "times_s": times, "peak_c": peaks},
            )
        times.append(t_now)
        peaks.append(
            float(system.solution_from(temperature).peak_temperature())
        )
        if checkpoint_every and step % checkpoint_every == 0:
            save_checkpoint(
                "transient",
                {
                    "step": step,
                    "n": n,
                    "dt_s": dt_s,
                    "duration_s": duration_s,
                    "temperature": temperature,
                    "times_s": times,
                    "peak_c": peaks,
                    "stack_name": stack.name,
                },
                checkpoint_path,
            )
    final = system.solution_from(temperature)
    cfg = get_oracle_config()
    if cfg.enabled:
        # Bounds oracle on the final field: a transient may legitimately
        # pass through any trajectory, but its end state must still be
        # physical (>= ambient with backward Euler from a cold start,
        # below the damage ceiling).
        record_check("thermal.transient-bounds")
        field = final.temperature
        # A caller-supplied initial field may legitimately start (and
        # end) below ambient; only ambient starts get the lower bound.
        floor = ambient if initial is None else float("-inf")
        for problem in check_temperature_bounds(
            float(field.min()), float(field.max()), floor, cfg.temp_slack_c
        ):
            record_violation("thermal.transient-bounds", "thermal", problem)
            final.degraded = True
    return TransientResult(
        times_s=times,
        peak_c=peaks,
        final=final,
    )
