"""3D die-stack thermal simulation.

Implements the paper's Section 2.3 modeling environment: steady-state heat
conduction (Equation 1 with the time derivative dropped) through the full
stacked-die / package / motherboard system of Figures 1 and 2, with
convective boundary conditions (Equation 2) on the heat-sink and
motherboard faces, solved by a structured-grid finite-volume method.
Material constants follow Table 2.
"""

from repro.thermal.materials import (
    AMBIENT_C,
    MATERIALS,
    TABLE2_CONSTANTS,
    Material,
)
from repro.thermal.stack import (
    DieSpec,
    Layer,
    ThermalStack,
    build_3d_stack,
    build_multi_stack,
    build_planar_stack,
)
from repro.thermal.solver import (
    DiscreteSystem,
    SolverConfig,
    ThermalOperator,
    ThermalSolution,
    assemble_system,
    clear_operator_cache,
    geometry_key,
    operator_cache_stats,
    solve_steady_state,
)
from repro.thermal.transient import TransientResult, solve_transient
from repro.thermal.model import (
    peak_temperature_planar,
    peak_temperature_stack,
    simulate_planar,
    simulate_stack,
)

__all__ = [
    "AMBIENT_C",
    "MATERIALS",
    "TABLE2_CONSTANTS",
    "Material",
    "DieSpec",
    "Layer",
    "ThermalStack",
    "build_multi_stack",
    "build_planar_stack",
    "build_3d_stack",
    "DiscreteSystem",
    "SolverConfig",
    "ThermalOperator",
    "ThermalSolution",
    "TransientResult",
    "assemble_system",
    "clear_operator_cache",
    "geometry_key",
    "operator_cache_stats",
    "solve_steady_state",
    "solve_transient",
    "simulate_planar",
    "simulate_stack",
    "peak_temperature_planar",
    "peak_temperature_stack",
]
