"""Acceptance harness: run every experiment and grade it against the paper.

Produces the machine-readable counterpart of EXPERIMENTS.md: one
:class:`Check` per compared quantity, each graded ``pass`` (within
tolerance), ``shape`` (ordering/direction reproduced but the absolute
value deviates — acceptable per DESIGN.md's reproduction contract), or
``fail``.  Driven by ``python -m repro validate`` and by the integration
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.thermal.solver import SolverConfig

PASS = "pass"
SHAPE = "shape"
FAIL = "fail"


@dataclass(frozen=True)
class Check:
    """One graded quantity.

    Attributes:
        experiment: Paper artifact id (e.g. ``figure-8``).
        name: Quantity label.
        paper: Published value (None for pure-shape checks).
        measured: Our value.
        grade: ``pass`` / ``shape`` / ``fail``.
        note: Human-readable context.
    """

    experiment: str
    name: str
    paper: Optional[float]
    measured: float
    grade: str
    note: str = ""

    def render(self) -> str:
        paper = "-" if self.paper is None else f"{self.paper:8.2f}"
        marker = {PASS: "PASS ", SHAPE: "SHAPE", FAIL: "FAIL "}[self.grade]
        note = f"  ({self.note})" if self.note else ""
        return (
            f"[{marker}] {self.experiment:10} {self.name:38} "
            f"paper {paper}  measured {self.measured:8.2f}{note}"
        )


@dataclass
class ValidationReport:
    """All checks from one validation run."""

    checks: List[Check] = field(default_factory=list)

    def add(self, check: Check) -> None:
        self.checks.append(check)

    @property
    def failures(self) -> List[Check]:
        return [c for c in self.checks if c.grade == FAIL]

    @property
    def counts(self) -> Dict[str, int]:
        counts = {PASS: 0, SHAPE: 0, FAIL: 0}
        for check in self.checks:
            counts[check.grade] += 1
        return counts

    def render(self) -> str:
        lines = [check.render() for check in self.checks]
        counts = self.counts
        lines.append(
            f"\n{counts[PASS]} pass, {counts[SHAPE]} shape-only, "
            f"{counts[FAIL]} fail over {len(self.checks)} checks"
        )
        return "\n".join(lines)


def _grade(
    report: ValidationReport,
    experiment: str,
    name: str,
    paper: float,
    measured: float,
    abs_tol: float,
    shape_ok: bool = True,
    note: str = "",
) -> None:
    """Grade one quantity: within tolerance -> pass; else shape/fail."""
    if abs(measured - paper) <= abs_tol:
        grade = PASS
    elif shape_ok:
        grade = SHAPE
    else:
        grade = FAIL
    report.add(Check(experiment, name, paper, measured, grade, note))


def validate_thermals(
    report: ValidationReport, grid: SolverConfig
) -> None:
    """Figures 6, 8, and 11: the thermal operating points."""
    from repro.core.logic_on_logic import run_thermal_study as logic_thermals
    from repro.core.memory_on_logic import (
        run_thermal_study as memory_thermals,
    )
    from repro.floorplan import core2duo_floorplan
    from repro.thermal import simulate_planar

    baseline = simulate_planar(core2duo_floorplan(), grid)
    _grade(report, "figure-6", "peak temperature (C)", 88.35,
           baseline.peak_temperature(), abs_tol=2.0)
    _grade(report, "figure-6", "coolest on-die (C)", 59.0,
           baseline.coolest_on_die(), abs_tol=2.0)

    temps = memory_thermals(grid)
    for name, paper in (("2D 4MB", 88.35), ("3D 12MB", 92.85),
                        ("3D 32MB", 88.43), ("3D 64MB", 90.27)):
        _grade(report, "figure-8", f"{name} peak (C)", paper,
               temps[name], abs_tol=2.5)
    ordering_ok = temps["3D 12MB"] == max(temps.values())
    report.add(Check(
        "figure-8", "SRAM stack is the hottest option", None,
        temps["3D 12MB"], PASS if ordering_ok else FAIL,
        "ordering check",
    ))

    logic = logic_thermals(grid)
    _grade(report, "figure-11", "2D baseline (C)", 98.6,
           logic["2D Baseline"], abs_tol=2.0)
    _grade(report, "figure-11", "3D floorplan (C)", 112.5,
           logic["3D"], abs_tol=3.0,
           note="repaired floorplan runs cooler; see EXPERIMENTS.md")
    _grade(report, "figure-11", "3D worst case (C)", 124.75,
           logic["3D Worstcase"], abs_tol=3.5)
    monotone = logic["2D Baseline"] < logic["3D"] < logic["3D Worstcase"]
    report.add(Check(
        "figure-11", "baseline < 3D < worst case", None, logic["3D"],
        PASS if monotone else FAIL, "ordering check",
    ))


def validate_logic_performance(report: ValidationReport) -> None:
    """Table 4 and the Section 4 power/performance headlines."""
    from repro.core.logic_on_logic import run_performance_study

    result = run_performance_study()
    targets = {
        "front_end": 0.2, "trace_cache": 0.33, "rename_alloc": 0.66,
        "fp_wire": 4.0, "int_rf_read": 0.5, "data_cache_read": 1.5,
        "instruction_loop": 1.0, "retire_dealloc": 1.0, "fp_load": 2.0,
        "store_lifetime": 3.0,
    }
    for area, paper in targets.items():
        _grade(report, "table-4", f"{area} gain (%)", paper,
               result.per_row_gains[area],
               abs_tol=max(0.35, paper * 0.2))
    _grade(report, "table-4", "total gain (%)", 15.0,
           result.total_gain_pct, abs_tol=1.0, shape_ok=False)
    _grade(report, "table-4", "stages eliminated (%)", 25.0,
           result.stages_eliminated_pct, abs_tol=3.0)
    _grade(report, "headlines", "logic power reduction (%)", 15.0,
           result.power_reduction_pct, abs_tol=1.0, shape_ok=False)


def validate_dvfs(report: ValidationReport, grid: SolverConfig) -> None:
    """Table 5's power/performance columns (the exact-arithmetic rows)."""
    from repro.core.logic_on_logic import thermal_map_3d_power
    from repro.uarch.dvfs import table5_points

    rows = {p.name: p for p in table5_points(thermal_map_3d_power(grid))}
    expectations = {
        "Same Pwr": (147.0, 129.0),
        "Same Freq.": (125.0, 115.0),
        "Same Temp": (97.28, 108.0),
        "Same Perf.": (68.2, 100.0),
    }
    for name, (power, perf) in expectations.items():
        _grade(report, "table-5", f"{name} power (W)", power,
               rows[name].power_w, abs_tol=1.5, shape_ok=False)
        _grade(report, "table-5", f"{name} perf (%)", perf,
               rows[name].perf_pct, abs_tol=1.0, shape_ok=False)


def validate_memory(
    report: ValidationReport,
    scale: int = 16,
    length_factor: float = 0.5,
) -> None:
    """Figure 5's shape on a representative workload subset."""
    from repro.core.memory_on_logic import run_performance_study

    result = run_performance_study(
        workloads=["gauss", "sus", "svm", "ssym", "savdf"],
        scale=scale,
        length_factor=length_factor,
    )
    _grade(report, "figure-5", "max CPMA reduction at 32MB (%)", 55.0,
           100.0 * result.max_cpma_reduction(), abs_tol=12.0)
    for winner in ("gauss", "sus"):
        row = result.cpma[winner]
        reduction = 100.0 * (1 - row["3D 32MB"] / row["2D 4MB"])
        report.add(Check(
            "figure-5", f"{winner} improves dramatically", None, reduction,
            PASS if reduction > 25.0 else FAIL, "capacity winner",
        ))
    for fitter in ("ssym", "savdf"):
        row = result.cpma[fitter]
        gain_12 = 100.0 * (1 - row["3D 12MB"] / row["2D 4MB"])
        report.add(Check(
            "figure-5", f"{fitter} gains nothing from 12MB", None, gain_12,
            PASS if gain_12 < 5.0 else FAIL, "fits the 4MB baseline",
        ))
    bw_reduction = 100.0 * result.bus_power_reduction()
    _grade(report, "figure-5", "bus power reduction (%)", 66.0,
           bw_reduction, abs_tol=20.0)


def run_validation(
    grid: Optional[SolverConfig] = None,
    scale: int = 16,
    length_factor: float = 0.5,
    include_memory: bool = True,
) -> ValidationReport:
    """Run the full acceptance suite; see the module docstring."""
    grid = grid or SolverConfig(nx=48, ny=48)
    report = ValidationReport()
    validate_thermals(report, grid)
    validate_logic_performance(report)
    validate_dvfs(report, grid)
    if include_memory:
        validate_memory(report, scale=scale, length_factor=length_factor)
    return report
