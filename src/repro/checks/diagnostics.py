"""Diagnostic records and the RPL code registry.

Every pass emits :class:`Diagnostic` values.  A diagnostic's *context*
is the stripped source line it points at; the baseline keys on
``code|path|context`` rather than on line numbers, so unrelated edits
above a grandfathered violation do not un-suppress it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Registry of every diagnostic code: code -> (pass name, summary).
CODES: Dict[str, tuple] = {
    "RPL000": ("engine", "file does not parse"),
    # -- determinism ------------------------------------------------------
    "RPL101": ("determinism", "unseeded RNG construction"),
    "RPL102": ("determinism", "module-level RNG call (global state)"),
    "RPL103": ("determinism", "wall-clock read outside the allowlist"),
    # -- layering ---------------------------------------------------------
    "RPL201": ("layering", "upward import (lower layer imports higher)"),
    "RPL202": ("layering", "cross-layer import between same-layer packages"),
    "RPL203": ("layering", "package import cycle"),
    "RPL204": ("layering", "import of a package with no assigned layer"),
    # -- experiment contracts --------------------------------------------
    "RPL301": ("contracts", "experiment run callable has no docstring"),
    "RPL302": ("contracts", "docstring does not name the paper artifact"),
    "RPL303": ("contracts", "run callable does not accept **kwargs"),
    "RPL304": ("contracts", "experiment id referenced by no test"),
    "RPL305": ("contracts", "trace kernel not in the Table 1 workload set"),
    "RPL306": ("contracts", "Table 1 workload missing from the registry"),
    # -- physics hygiene --------------------------------------------------
    "RPL401": ("physics", "Material constructed from a bare literal"),
    "RPL402": ("physics", "bare physics literal at a call site"),
    "RPL403": ("physics", "bare physics literal as a parameter default"),
    # -- concurrency discipline (flow-sensitive) --------------------------
    "RPL501": ("concurrency", "lease claim not discharged on every path"),
    "RPL502": ("concurrency", "journal append on a lease-blind path"),
    "RPL503": ("concurrency", "resource not closed on every path"),
    "RPL504": ("concurrency", "ambient clock read beside an explicit now"),
    # -- async/service hygiene (flow-sensitive) ---------------------------
    "RPL601": ("async", "blocking call reachable inside async def"),
    "RPL602": ("async", "stale jobstore record used across an await"),
    "RPL603": ("async", "status code outside the pinned contract"),
    "RPL604": ("async", "exception can escape a route handler"),
}


@dataclass(frozen=True)
class Explanation:
    """The ``repro lint --explain RPL###`` payload for one rule.

    Each pass module keeps an ``EXPLANATIONS`` dict next to its
    implementation so the rationale lives with the code it documents;
    the engine aggregates them.
    """

    code: str
    title: str
    rationale: str
    example: str
    fix: str

    def render(self) -> str:
        def indent(text: str) -> str:
            return "\n".join(f"    {line}" for line in text.splitlines())

        return "\n".join([
            f"{self.code} — {self.title}",
            "",
            "why:",
            indent(self.rationale),
            "",
            "example violation:",
            indent(self.example),
            "",
            "fix pattern:",
            indent(self.fix),
        ])


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding of one pass.

    Attributes:
        path: File path relative to the scanned package root (posix).
        line: 1-based line number.
        col: 0-based column.
        code: ``RPLxxx`` code (see :data:`CODES`).
        message: Human-readable description of this instance.
        context: The stripped source line (baseline anchor).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    context: str = field(default="", compare=False)

    @property
    def pass_name(self) -> str:
        return CODES.get(self.code, ("unknown", ""))[0]

    @property
    def baseline_key(self) -> str:
        """Line-number-independent identity used by the baseline."""
        return f"{self.code}|{self.path}|{self.context}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "pass": self.pass_name,
            "message": self.message,
            "context": self.context,
        }


@dataclass(frozen=True)
class PyFile:
    """A parsed source file handed to the passes.

    Attributes:
        rel: Path relative to the package root, posix separators
            (e.g. ``"thermal/solver.py"``).
        module: Dotted module name (e.g. ``"repro.thermal.solver"``).
        tree: Parsed AST (empty module if the file did not parse).
        lines: Source split into lines (for diagnostic context).
        parse_error: Non-empty if the file failed to parse (RPL000).
    """

    rel: str
    module: str
    tree: ast.Module
    lines: List[str] = field(compare=False)
    parse_error: str = ""

    def context(self, line: int) -> str:
        """The stripped source line at a 1-based line number."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def diag(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        """Build a diagnostic anchored at an AST node."""
        line = getattr(node, "lineno", 1)
        return Diagnostic(
            path=self.rel,
            line=line,
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            context=self.context(line),
        )
