"""``repro lint`` — AST-based invariant analysis for the reproduction.

Four static passes guard the contracts the paper's results depend on
(seeded determinism, layer discipline, experiment/figure mapping, and
physics-constant hygiene), each emitting coded diagnostics:

* ``RPL1xx`` — determinism (:mod:`repro.checks.determinism`)
* ``RPL2xx`` — layering (:mod:`repro.checks.layering`)
* ``RPL3xx`` — experiment contracts (:mod:`repro.checks.contracts`)
* ``RPL4xx`` — physics hygiene (:mod:`repro.checks.physics`)

The subsystem is deliberately self-contained: it imports nothing from
the simulator layers (everything is derived from source text and ASTs),
so the linter can never be broken by the code it checks.

Run it via ``repro lint`` (see :mod:`repro.checks.engine`); a committed
baseline file grandfathers pre-existing violations so only *new* ones
fail CI.
"""

from repro.checks.baseline import apply_baseline, load_baseline, save_baseline
from repro.checks.diagnostics import CODES, Diagnostic
from repro.checks.engine import LintReport, run_lint

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "apply_baseline",
    "load_baseline",
    "run_lint",
    "save_baseline",
]
