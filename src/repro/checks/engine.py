"""The ``repro lint`` engine: file discovery, pass orchestration, output.

Exit codes (mirroring the sweep command's "usage vs. outcome" split):

* ``0`` — no new violations (baselined and stale findings allowed);
* ``2`` — new violations, or a scanned file that does not parse;
* argparse itself exits 2 on bad usage.

The engine never imports the code it scans; everything is AST-level, so
a broken simulator module yields an ``RPL000`` diagnostic instead of an
import error.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.checks import contracts, determinism, layering, physics
from repro.checks.baseline import apply_baseline, load_baseline, save_baseline
from repro.checks.diagnostics import CODES, Diagnostic, Explanation, PyFile
from repro.checks.flow import asyncsafety, concurrency

#: Name of the committed baseline file, looked up at the repo root.
BASELINE_NAME = "repro-lint-baseline.json"

#: Sentinel: "use the committed baseline if one exists".
AUTO_BASELINE = "auto"

PASSES = (
    "determinism", "layering", "contracts", "physics",
    "concurrency", "async",
)


def package_root() -> Path:
    """The installed ``repro`` package directory (scan root)."""
    return Path(__file__).resolve().parents[1]


def repo_root() -> Path:
    """Best-effort repository root (``src/repro`` layout -> two up)."""
    return package_root().parents[1]


def default_baseline_path() -> Optional[Path]:
    """The committed baseline, if present at the repo root."""
    candidate = repo_root() / BASELINE_NAME
    return candidate if candidate.is_file() else None


def load_files(
    root: Path, top: str = "repro"
) -> List[PyFile]:
    """Parse every ``*.py`` under *root* into :class:`PyFile` records.

    Unparseable files are returned as pseudo-files with an empty AST; the
    engine reports them as ``RPL000`` (they cannot be analyzed, which is
    itself a violation).
    """
    files: List[PyFile] = []
    for path in sorted(Path(root).rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        dotted = rel[: -len(".py")].replace("/", ".")
        if dotted.endswith("__init__"):
            dotted = dotted[: -len(".__init__")] if "." in dotted else ""
        module = f"{top}.{dotted}" if dotted else top
        text = path.read_text(encoding="utf-8", errors="replace")
        lines = text.splitlines()
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            files.append(PyFile(
                rel=rel, module=module,
                tree=ast.Module(body=[], type_ignores=[]),
                lines=lines,
                parse_error=f"{type(exc).__name__} at line {exc.lineno}",
            ))
            continue
        files.append(PyFile(rel=rel, module=module, tree=tree, lines=lines))
    return files


@dataclass
class LintReport:
    """Everything one lint run produced.

    Attributes:
        root: Scanned package root.
        diagnostics: Every finding, sorted.
        new: Findings not covered by the baseline (these fail the run).
        suppressed: Findings the baseline grandfathers.
        stale_baseline: Baseline keys with leftover budget (fixed
            violations whose entries should be pruned).
        parse_failures: Files that did not parse (subset of ``new``).
    """

    root: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    new: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    stale_baseline: Dict[str, int] = field(default_factory=dict)
    baseline_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.new

    def counts(self) -> Dict[str, int]:
        per_pass: Dict[str, int] = {name: 0 for name in PASSES}
        for diag in self.diagnostics:
            per_pass[diag.pass_name] = per_pass.get(diag.pass_name, 0) + 1
        return {
            "total": len(self.diagnostics),
            "new": len(self.new),
            "baselined": len(self.suppressed),
            "stale_baseline": len(self.stale_baseline),
            **{f"pass:{name}": count for name, count in sorted(per_pass.items())},
        }


def _select_filter(
    diagnostics: Iterable[Diagnostic], select: Optional[Sequence[str]]
) -> List[Diagnostic]:
    if not select:
        return list(diagnostics)
    prefixes = tuple(s.strip().upper() for s in select if s.strip())
    return [d for d in diagnostics if d.code.startswith(prefixes)]


def run_passes(
    files: List[PyFile],
    tests_dir: Optional[Path] = None,
) -> List[Diagnostic]:
    """All passes (plus parse-failure reporting) over parsed files."""
    out: List[Diagnostic] = []
    for pf in files:
        if pf.parse_error:
            out.append(Diagnostic(
                path=pf.rel, line=1, col=0, code="RPL000",
                message=f"file does not parse ({pf.parse_error})",
                context="parse-failure",
            ))
    out.extend(determinism.run(files))
    out.extend(layering.run(files))
    out.extend(contracts.run(files, tests_dir=tests_dir))
    out.extend(physics.run(files))
    out.extend(concurrency.run(files))
    out.extend(asyncsafety.run(files))
    return sorted(out)


def run_lint(
    root: Optional[Path] = None,
    tests_dir: Optional[Path] = None,
    baseline_path=AUTO_BASELINE,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run every pass and apply the baseline; the CLI's workhorse.

    Args:
        root: Package directory to scan (default: the installed
            ``repro`` package).
        tests_dir: Tests directory for the contract pass's
            "referenced by a test" check (default: ``tests/`` at the
            repo root, skipped if absent).
        baseline_path: Baseline file.  The default
            (:data:`AUTO_BASELINE`) uses the committed one at the repo
            root if present; ``None`` lints without grandfathering.
        select: Code prefixes to keep (e.g. ``["RPL1", "RPL203"]``).
    """
    root = Path(root) if root is not None else package_root()
    if baseline_path == AUTO_BASELINE:
        baseline_path = default_baseline_path()
    if tests_dir is None:
        candidate = repo_root() / "tests"
        tests_dir = candidate if candidate.is_dir() else None
    files = load_files(root)
    diagnostics = _select_filter(run_passes(files, tests_dir), select)

    report = LintReport(root=str(root), diagnostics=diagnostics)
    baseline: Dict[str, int] = {}
    if baseline_path is not None and Path(baseline_path).is_file():
        baseline = load_baseline(Path(baseline_path))
        report.baseline_path = str(baseline_path)
    report.new, report.suppressed, report.stale_baseline = apply_baseline(
        diagnostics, baseline
    )
    return report


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human rendering: new findings, then baseline accounting."""
    lines: List[str] = []
    for diag in report.new:
        lines.append(diag.render())
    if verbose:
        for diag in report.suppressed:
            lines.append(f"{diag.render()} [baselined]")
    for key, left in report.stale_baseline.items():
        lines.append(
            f"warning: stale baseline entry ({left} unmatched): {key} "
            f"-- run `repro lint --write-baseline` to prune"
        )
    counts = report.counts()
    lines.append(
        f"repro lint: {counts['total']} finding(s) "
        f"({counts['new']} new, {counts['baselined']} baselined, "
        f"{counts['stale_baseline']} stale baseline entr"
        f"{'y' if counts['stale_baseline'] == 1 else 'ies'}) "
        f"across {len(PASSES)} passes"
    )
    lines.append("verdict: " + ("OK" if report.ok else "NEW VIOLATIONS"))
    return "\n".join(lines)


def to_json(report: LintReport) -> Dict[str, object]:
    """JSON rendering (the ``--format json`` schema, CI artifact)."""
    suppressed = set(id(d) for d in report.suppressed)
    return {
        "version": 1,
        "root": report.root,
        "baseline": report.baseline_path,
        "passes": list(PASSES),
        "codes": {code: desc for code, (_, desc) in sorted(CODES.items())},
        "counts": report.counts(),
        "ok": report.ok,
        "diagnostics": [
            {**diag.to_dict(), "baselined": id(diag) in suppressed}
            for diag in report.diagnostics
        ],
        "stale_baseline": dict(report.stale_baseline),
    }


#: Engine-owned explanations (codes with no pass module of their own).
EXPLANATIONS = {
    "RPL000": Explanation(
        code="RPL000",
        title="file does not parse",
        rationale=(
            "The engine analyses source ASTs without importing them; a "
            "file that does not parse cannot be analysed by any pass, "
            "which is itself a violation (and would crash at import "
            "time anyway)."
        ),
        example="def broken(:\n    pass",
        fix="Fix the syntax error; `python -m compileall src` shows it.",
    ),
}


def explain(code: str) -> Optional[Explanation]:
    """The :class:`Explanation` for one RPL code, if registered."""
    code = code.strip().upper()
    for source in (
        EXPLANATIONS,
        determinism.EXPLANATIONS,
        layering.EXPLANATIONS,
        contracts.EXPLANATIONS,
        physics.EXPLANATIONS,
        concurrency.EXPLANATIONS,
        asyncsafety.EXPLANATIONS,
    ):
        if code in source:
            return source[code]
    return None


def main(args) -> int:
    """Entry point for ``repro lint`` (argparse namespace in, exit code out)."""
    if getattr(args, "explain", None):
        code = args.explain.strip().upper()
        if not code.startswith("RPL"):
            code = f"RPL{code}"
        explanation = explain(code)
        if explanation is None:
            known = ", ".join(sorted(CODES))
            print(f"unknown code {code!r}; known codes: {known}")
            return 2
        print(explanation.render())
        return 0

    root = Path(args.root) if getattr(args, "root", None) else package_root()
    if getattr(args, "no_baseline", False):
        baseline_path = None
    elif getattr(args, "baseline", None):
        baseline_path = Path(args.baseline)
    else:
        baseline_path = default_baseline_path()

    select: Optional[List[str]] = None
    if getattr(args, "select", None):
        select = [
            code
            for chunk in args.select
            for code in chunk.split(",")
            if code.strip()
        ]

    if getattr(args, "write_baseline", False):
        target = baseline_path or (repo_root() / BASELINE_NAME)
        report = run_lint(root=root, baseline_path=None, select=select)
        entries = save_baseline(target, report.diagnostics)
        print(
            f"wrote {target}: {sum(entries.values())} finding(s) across "
            f"{len(entries)} baseline entr{'y' if len(entries) == 1 else 'ies'}"
        )
        return 0

    report = run_lint(root=root, baseline_path=baseline_path, select=select)
    if getattr(args, "format", "text") == "json":
        print(json.dumps(to_json(report), indent=2))
    else:
        print(render_text(report, verbose=getattr(args, "verbose", False)))
    return 0 if report.ok else 2
