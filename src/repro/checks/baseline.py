"""Baseline (grandfathering) for ``repro lint``.

The committed baseline records every *known* violation as a count per
``code|path|context`` key.  Keys anchor on the stripped source line, not
the line number, so edits elsewhere in a file do not churn the baseline.

Semantics:

* a finding whose key has remaining budget in the baseline is
  **suppressed** (reported as baselined, does not fail the run);
* findings beyond the budget — a new violation, or a second copy of a
  grandfathered line — are **new** and fail the run;
* baseline entries with more budget than current findings are **stale**:
  the violation was fixed (or the line changed), and the entry should be
  removed with ``repro lint --write-baseline``.  Stale entries are
  reported but never fail the run.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.checks.diagnostics import Diagnostic

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into a key -> count mapping."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"baseline {path} has no 'entries' mapping")
    return {str(key): int(count) for key, count in entries.items()}


def save_baseline(path: Path, diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """Write the given findings as the new baseline; returns the entries."""
    counts = Counter(diag.baseline_key for diag in diagnostics)
    entries = {key: counts[key] for key in sorted(counts)}
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered `repro lint` violations. New violations fail; "
            "regenerate after genuine fixes with `repro lint "
            "--write-baseline`."
        ),
        "entries": entries,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return entries


def apply_baseline(
    diagnostics: List[Diagnostic],
    baseline: Dict[str, int],
) -> Tuple[List[Diagnostic], List[Diagnostic], Dict[str, int]]:
    """Split findings into (new, suppressed) and report stale entries.

    Findings are consumed against the baseline in sorted order so the
    split is deterministic.  Returns ``(new, suppressed, stale)`` where
    ``stale`` maps unconsumed baseline keys to their leftover budget.
    """
    budget = dict(baseline)
    new: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    for diag in sorted(diagnostics):
        key = diag.baseline_key
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed.append(diag)
        else:
            new.append(diag)
    stale = {key: left for key, left in sorted(budget.items()) if left > 0}
    return new, suppressed, stale
