"""RPL4xx — the physics-hygiene pass.

Table 2's material constants (and the calibrated package constants
around them) live in ``thermal/materials.py``; the planar power skews
live in named module constants.  A bare numeric literal for a
conductivity, thickness, power, or heat-transfer coefficient anywhere
else in ``thermal/`` or ``uarch/power.py`` bypasses that single source
of truth — two call sites can silently drift apart, and a recalibration
misses one of them.

The pass flags literals at *use sites* (call arguments and parameter
defaults).  Named module-level constants are the remedy, not the
disease, so assignments like ``HEATSINK_H_EFF = 5400.0`` are fine.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional

from repro.checks.diagnostics import Diagnostic, Explanation, PyFile

#: Files the pass scans (prefix match on package-root-relative paths).
DEFAULT_SCOPE = ("thermal/", "uarch/power.py")

#: The constants module itself is exempt — it is the source of truth.
DEFAULT_EXEMPT = ("thermal/materials.py",)

#: Parameter/keyword names that denote physical quantities.
PHYSICS_NAME_RE = re.compile(
    r"(conductivity|thickness|heat_capacity|h_eff|htc|ambient"
    r"|power_w|total_w|planar_w|tdp|watts|emissivity|density_w)",
)

#: Method names whose single argument is a physical quantity.
PHYSICS_METHODS = frozenset({"with_conductivity"})


def _numeric_literal(node: ast.AST) -> Optional[float]:
    """The value of an int/float literal (incl. unary minus), else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    return None


def in_scope(
    rel: str,
    scope: Iterable[str] = DEFAULT_SCOPE,
    exempt: Iterable[str] = DEFAULT_EXEMPT,
) -> bool:
    if rel in exempt:
        return False
    return any(rel == s or rel.startswith(s) for s in scope)


def check_file(pf: PyFile) -> List[Diagnostic]:
    """Run the physics-hygiene pass over one in-scope file."""
    out: List[Diagnostic] = []
    for node in ast.walk(pf.tree):
        if isinstance(node, ast.Call):
            func = node.func
            # Material("x", 390.0) outside materials.py -----------------
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "Material":
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    value = _numeric_literal(arg)
                    if value is not None:
                        out.append(pf.diag(
                            arg, "RPL401",
                            f"Material constructed from the bare literal "
                            f"{value:g}; define it in thermal.materials",
                        ))
                continue
            if name in PHYSICS_METHODS:
                for arg in node.args:
                    value = _numeric_literal(arg)
                    if value is not None:
                        out.append(pf.diag(
                            arg, "RPL402",
                            f"bare literal {value:g} passed to {name}(); "
                            f"use a named constant from thermal.materials",
                        ))
            for kw in node.keywords:
                if kw.arg and PHYSICS_NAME_RE.search(kw.arg):
                    value = _numeric_literal(kw.value)
                    if value is not None:
                        out.append(pf.diag(
                            kw.value, "RPL402",
                            f"bare literal {value:g} for physical keyword "
                            f"{kw.arg!r}; use a named constant",
                        ))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = args.posonlyargs + args.args
            defaults = args.defaults
            # defaults align with the tail of the positional list
            for arg, default in zip(positional[len(positional) - len(defaults):],
                                    defaults):
                _flag_default(pf, node, arg, default, out)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None:
                    _flag_default(pf, node, arg, default, out)
    return out


def _flag_default(
    pf: PyFile,
    fn: ast.AST,
    arg: ast.arg,
    default: ast.AST,
    out: List[Diagnostic],
) -> None:
    if not PHYSICS_NAME_RE.search(arg.arg):
        return
    value = _numeric_literal(default)
    if value is not None:
        out.append(pf.diag(
            default, "RPL403",
            f"bare literal {value:g} as default for physical parameter "
            f"{arg.arg!r} of {getattr(fn, 'name', '?')}(); "
            f"use a named constant",
        ))


def run(
    files: Iterable[PyFile],
    scope: Iterable[str] = DEFAULT_SCOPE,
    exempt: Iterable[str] = DEFAULT_EXEMPT,
) -> List[Diagnostic]:
    """The physics-hygiene pass over a set of files."""
    out: List[Diagnostic] = []
    for pf in files:
        if in_scope(pf.rel, scope, exempt):
            out.extend(check_file(pf))
    return out


EXPLANATIONS = {
    "RPL401": Explanation(
        code="RPL401",
        title="Material constructed from a bare literal",
        rationale=(
            "Material properties (conductivity, heat capacity) must "
            "come from the named-constant tables so every physical "
            "number is cited and unit-checked once; a bare literal "
            "bypasses both."
        ),
        example="m = Material(k=1.5, c=1.75e6)",
        fix="m = Material(k=K_SILICON_W_MK, c=C_SILICON_J_M3K)",
    ),
    "RPL402": Explanation(
        code="RPL402",
        title="bare physics literal at a call site",
        rationale=(
            "A numeric literal with physics units passed straight "
            "into a solver call cannot be audited against the paper; "
            "named constants carry the unit and the citation."
        ),
        example="solve(dt=0.001, k=149.0)",
        fix="solve(dt=DT_S, k=K_SILICON_W_MK)",
    ),
    "RPL403": Explanation(
        code="RPL403",
        title="bare physics literal as a parameter default",
        rationale=(
            "Defaults are the most-silently-used values in the "
            "codebase; a physics default must be a named constant so "
            "changing it is one reviewed edit, not a scavenger hunt."
        ),
        example="def simulate(k=149.0):",
        fix="def simulate(k=K_SILICON_W_MK):",
    ),
}
