"""RPL3xx — the experiment-contract pass.

The registry in ``core/experiments.py`` is the map from this repo to the
paper: every entry must say which figure/table it reproduces, must run
through the seeded/fingerprinted ``run_experiment`` machinery, and must
be exercised by at least one test.  The kernel registry in
``traces/kernels/registry.py`` must stay the paper's Table 1 workload
set — no drive-by kernels, no silently dropped workloads.

All checks are static: the registry module is parsed, never imported.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.checks.diagnostics import Diagnostic, Explanation, PyFile

#: Where the experiment registry lives, package-root-relative.
EXPERIMENTS_REL = "core/experiments.py"

#: Where the kernel registry lives, package-root-relative.
KERNELS_REL = "traces/kernels/registry.py"

#: The paper's Table 1 RMS workload set (Section 3).
TABLE1_WORKLOADS = frozenset({
    "conj", "dsym", "gauss", "pcg", "smvm", "ssym",
    "strans", "savdf", "savif", "sus", "svd", "svm",
})

#: Experiment ids that name no single figure/table; their docstrings
#: must mention the id stem instead.
_ARTIFACT_RE = re.compile(r"^(figure|table)-(\w+)$")


def _experiment_entries(tree: ast.Module) -> List[Dict[str, object]]:
    """``Experiment(id=..., run=...)`` constructions in the module."""
    entries: List[Dict[str, object]] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "Experiment"):
            continue
        entry: Dict[str, object] = {"node": node}
        for kw in node.keywords:
            if kw.arg == "id" and isinstance(kw.value, ast.Constant):
                entry["id"] = kw.value.value
            elif kw.arg == "run" and isinstance(kw.value, ast.Name):
                entry["run"] = kw.value.id
        entries.append(entry)
    return entries


def _functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _docstring_names_artifact(doc: str, experiment_id: str) -> bool:
    """Does the docstring name the paper artifact the id encodes?

    ``figure-5`` is named by "figure 5" / "Figure 5" / "figure-5";
    a non-figure/table id like ``headlines`` is named by its stem.
    """
    text = doc.lower()
    match = _ARTIFACT_RE.match(experiment_id)
    if match:
        kind, num = match.groups()
        return (
            f"{kind} {num}" in text
            or f"{kind}-{num}" in text
            or f"{kind}s {num}" in text
        )
    stem = experiment_id.split("-")[0].rstrip("s")
    return stem in text


def _test_sources(tests_dir: Optional[Path]) -> Dict[str, str]:
    if tests_dir is None or not tests_dir.is_dir():
        return {}
    return {
        path.name: path.read_text(encoding="utf-8", errors="replace")
        for path in sorted(tests_dir.glob("**/*.py"))
    }


def check_experiments(
    pf: PyFile, tests_dir: Optional[Path]
) -> List[Diagnostic]:
    """Contract checks over the experiment registry module."""
    out: List[Diagnostic] = []
    functions = _functions(pf.tree)
    tests = _test_sources(tests_dir)

    for entry in _experiment_entries(pf.tree):
        node = entry["node"]
        experiment_id = entry.get("id")
        if not isinstance(experiment_id, str):
            out.append(pf.diag(
                node, "RPL302",
                "Experiment registered without a literal string id; the "
                "paper-artifact mapping cannot be checked",
            ))
            continue
        run_name = entry.get("run")
        fn = functions.get(run_name) if isinstance(run_name, str) else None
        if fn is not None:
            doc = ast.get_docstring(fn)
            if not doc:
                out.append(pf.diag(
                    fn, "RPL301",
                    f"run callable {fn.name}() for experiment "
                    f"{experiment_id!r} has no docstring; it must name the "
                    f"paper figure/table it reproduces",
                ))
            elif not _docstring_names_artifact(doc, experiment_id):
                out.append(pf.diag(
                    fn, "RPL302",
                    f"docstring of {fn.name}() does not name the paper "
                    f"artifact of experiment {experiment_id!r}",
                ))
            if not fn.args.kwarg:
                out.append(pf.diag(
                    fn, "RPL303",
                    f"run callable {fn.name}() for experiment "
                    f"{experiment_id!r} does not accept **kwargs; journaled "
                    f"kwargs could not round-trip through the fingerprint",
                ))
        if tests and not any(experiment_id in src for src in tests.values()):
            out.append(pf.diag(
                node, "RPL304",
                f"experiment {experiment_id!r} is referenced by no test "
                f"under tests/",
            ))
    return out


def check_kernels(pf: PyFile) -> List[Diagnostic]:
    """Table 1 mapping checks over the kernel registry module."""
    out: List[Diagnostic] = []
    registered: Dict[str, ast.Call] = {}
    for node in ast.walk(pf.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "KernelEntry"):
            continue
        name: Optional[str] = None
        if node.args and isinstance(node.args[0], ast.Constant):
            name = node.args[0].value
        for kw in node.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                name = kw.value.value
        if isinstance(name, str):
            registered[name] = node
    # Only meaningful if this really is the registry (it constructs
    # KernelEntry values); an empty module produces no findings.
    for name, node in sorted(registered.items()):
        if name not in TABLE1_WORKLOADS:
            out.append(pf.diag(
                node, "RPL305",
                f"kernel {name!r} does not map to a Table 1 workload "
                f"({sorted(TABLE1_WORKLOADS)})",
            ))
    if registered:
        for missing in sorted(TABLE1_WORKLOADS - set(registered)):
            out.append(Diagnostic(
                path=pf.rel, line=1, col=0, code="RPL306",
                message=f"Table 1 workload {missing!r} is missing from the "
                        f"kernel registry",
                context=f"missing:{missing}",
            ))
    return out


def run(
    files: Iterable[PyFile],
    tests_dir: Optional[Path] = None,
) -> List[Diagnostic]:
    """The contract pass over a set of files."""
    out: List[Diagnostic] = []
    for pf in files:
        if pf.rel == EXPERIMENTS_REL:
            out.extend(check_experiments(pf, tests_dir))
        elif pf.rel == KERNELS_REL:
            out.extend(check_kernels(pf))
    return out


EXPLANATIONS = {
    "RPL301": Explanation(
        code="RPL301",
        title="experiment run callable has no docstring",
        rationale=(
            "Each experiment reproduces a specific artifact of the "
            "paper; the docstring is where that claim lives, and the "
            "docs/NOTES tooling extracts it."
        ),
        example="def run(**kwargs):\n    ...",
        fix='def run(**kwargs):\n    """Reproduces Figure 4 ..."""',
    ),
    "RPL302": Explanation(
        code="RPL302",
        title="docstring does not name the paper artifact",
        rationale=(
            "A run docstring must cite the figure/table/section it "
            "reproduces (e.g. 'Figure 6', 'Table 1'); otherwise the "
            "experiment cannot be traced back to the paper."
        ),
        example='"""Runs the thing."""',
        fix='"""Reproduces Table 1 (3D vs 2D pipeline) ..."""',
    ),
    "RPL303": Explanation(
        code="RPL303",
        title="run callable does not accept **kwargs",
        rationale=(
            "The registry dispatches sweep points as keyword "
            "arguments; a run() without **kwargs breaks forward "
            "compatibility when a sweep adds an axis."
        ),
        example="def run(spec):\n    ...",
        fix="def run(spec=None, **kwargs):\n    ...",
    ),
    "RPL304": Explanation(
        code="RPL304",
        title="experiment id referenced by no test",
        rationale=(
            "Every registered experiment needs at least one test that "
            "names it; unreferenced experiments rot silently and fail "
            "only in full campaigns."
        ),
        example='REGISTRY["fig9_new"] = ...   # no test mentions fig9_new',
        fix="Add a test that runs (or at least smoke-loads) the id.",
    ),
    "RPL305": Explanation(
        code="RPL305",
        title="trace kernel not in the Table 1 workload set",
        rationale=(
            "The synthetic trace kernels model the paper's Table 1 "
            "workload mix; a kernel outside that set would make "
            "bench results incomparable to the paper."
        ),
        example='KERNELS["crypto"] = ...',
        fix="Use a Table 1 workload, or extend the set deliberately "
            "in one reviewed change.",
    ),
    "RPL306": Explanation(
        code="RPL306",
        title="Table 1 workload missing from the registry",
        rationale=(
            "Coverage must be total in both directions: every Table 1 "
            "workload needs a kernel, or the reproduction silently "
            "shrinks the workload mix."
        ),
        example="# KERNELS lacks 'ammp' while Table 1 lists it",
        fix="Add the missing kernel (or document its exclusion).",
    ),
}
