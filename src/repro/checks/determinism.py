"""RPL1xx — the determinism pass.

Bit-for-bit reproducibility under ``run_experiment(seed=...)`` requires
that every stochastic choice flow from a *seeded RNG instance* passed as
a parameter, and that no result depend on the wall clock.  This pass
flags the three ways code breaks that contract:

* ``RPL101`` — an RNG constructed with no seed (``random.Random()``,
  ``numpy.random.default_rng()``): its state comes from the OS.
* ``RPL102`` — a call through the *module-level* generator
  (``random.random()``, ``random.seed()``, ``numpy.random.*``): global
  state that any import can perturb, invisible to the seed plumbing.
* ``RPL103`` — a wall-clock read (``time.time``, ``perf_counter``,
  ``datetime.now``...) anywhere outside the allowlist.  The campaign
  supervisor and worker legitimately watch the clock (timeouts,
  heartbeats, elapsed-time bookkeeping), so those files are exempt.

``time.sleep`` is deliberately not flagged: pacing does not feed values
into results.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.checks.diagnostics import Diagnostic, Explanation, PyFile

#: Files (package-root-relative) allowed to read the wall clock.
DEFAULT_CLOCK_ALLOWLIST = frozenset({
    "runner/supervisor.py",
    "runner/worker.py",
    # The scheduler/pool/node split of the runner: supervision *is*
    # timing (lease TTLs, heartbeat watchdogs, wall-clock budgets), but
    # the clock never enters result data (elapsed_s is excluded from
    # fingerprints) and the lease table itself is clock-free.
    "runner/scheduler.py",
    "runner/pool.py",
    "runner/node.py",
    # The benchmark harness exists to read the wall clock; suites hand
    # it callables and never time anything themselves.
    "bench/harness.py",
    # The service's single clock: every other service module is
    # clock-explicit (rate limiter, breaker, admission all take an
    # explicit monotonic ``now``), and server.py threads one
    # time.monotonic() reading through them per request.
    "service/server.py",
})

#: Methods of the module-level ``random`` generator whose use is global
#: state.  ``Random`` itself is handled separately (RPL101 when unseeded).
RNG_METHODS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "getstate", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Wall-clock reads in the ``time`` module (``sleep`` excluded on purpose).
TIME_CLOCK_FUNCS = frozenset({
    "clock", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
    "time", "time_ns",
})

#: Wall-clock class methods of ``datetime.datetime`` / ``datetime.date``.
DATETIME_CLOCK_FUNCS = frozenset({"now", "today", "utcnow"})


class _Imports(ast.NodeVisitor):
    """Track which local names are the random/numpy/time/datetime modules."""

    def __init__(self) -> None:
        self.random_mods: Set[str] = set()
        self.numpy_mods: Set[str] = set()
        self.numpy_random_mods: Set[str] = set()
        self.time_mods: Set[str] = set()
        self.datetime_mods: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        #: name -> function it aliases, from ``from <mod> import <fn>``.
        self.random_funcs: Dict[str, str] = {}
        self.time_funcs: Dict[str, str] = {}
        self.random_class_names: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_mods.add(bound)
            elif alias.name == "numpy":
                self.numpy_mods.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.numpy_random_mods.add(alias.asname)
                else:
                    self.numpy_mods.add("numpy")
            elif alias.name == "time":
                self.time_mods.add(bound)
            elif alias.name == "datetime":
                self.datetime_mods.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:  # relative imports never target stdlib modules
            return
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                if alias.name == "Random":
                    self.random_class_names.add(bound)
                elif alias.name in RNG_METHODS:
                    self.random_funcs[bound] = alias.name
            elif node.module == "numpy":
                if alias.name == "random":
                    self.numpy_random_mods.add(bound)
            elif node.module == "numpy.random":
                # any callable off numpy.random is global-state or a
                # constructor; track the name either way
                self.random_funcs[bound] = f"numpy.random.{alias.name}"
            elif node.module == "time":
                if alias.name in TIME_CLOCK_FUNCS:
                    self.time_funcs[bound] = alias.name
            elif node.module == "datetime":
                if alias.name in ("datetime", "date"):
                    self.datetime_classes.add(bound)


def _is_name(node: ast.AST, names: Set[str]) -> bool:
    return isinstance(node, ast.Name) and node.id in names


def check_file(
    pf: PyFile,
    clock_allowlist: Iterable[str] = DEFAULT_CLOCK_ALLOWLIST,
) -> List[Diagnostic]:
    """Run the determinism pass over one file."""
    imports = _Imports()
    imports.visit(pf.tree)
    clock_ok = pf.rel in set(clock_allowlist)
    out: List[Diagnostic] = []

    for node in ast.walk(pf.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func

        # random.Random(...) / Random(...) ------------------------------
        ctor: Optional[str] = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "Random"
            and _is_name(func.value, imports.random_mods)
        ):
            ctor = "random.Random"
        elif _is_name(func, imports.random_class_names):
            ctor = "random.Random"
        if ctor:
            if not node.args and not node.keywords:
                out.append(pf.diag(
                    node, "RPL101",
                    f"{ctor}() constructed without a seed; pass an explicit "
                    f"seed so runs are reproducible",
                ))
            continue

        # numpy.random.* --------------------------------------------------
        if isinstance(func, ast.Attribute):
            value = func.value
            is_np_random = (
                _is_name(value, imports.numpy_random_mods)
                or (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and _is_name(value.value, imports.numpy_mods)
                )
            )
            if is_np_random:
                if func.attr in ("default_rng", "Generator", "RandomState"):
                    if not node.args and not node.keywords:
                        out.append(pf.diag(
                            node, "RPL101",
                            f"numpy.random.{func.attr}() constructed without "
                            f"a seed",
                        ))
                else:
                    out.append(pf.diag(
                        node, "RPL102",
                        f"call to the global numpy.random.{func.attr} "
                        f"generator; use a seeded Generator instance",
                    ))
                continue

            # random.<fn>(...) on the module-level generator ------------
            if (
                func.attr in RNG_METHODS
                and _is_name(func.value, imports.random_mods)
            ):
                out.append(pf.diag(
                    node, "RPL102",
                    f"call to the global random.{func.attr} generator; "
                    f"RNG must flow from a seeded Random instance parameter",
                ))
                continue

            # wall clock ------------------------------------------------
            if (
                func.attr in TIME_CLOCK_FUNCS
                and _is_name(func.value, imports.time_mods)
            ):
                if not clock_ok:
                    out.append(pf.diag(
                        node, "RPL103",
                        f"wall-clock read time.{func.attr}() outside the "
                        f"allowlist; results must not depend on the clock",
                    ))
                continue
            if func.attr in DATETIME_CLOCK_FUNCS:
                value = func.value
                from_class = _is_name(value, imports.datetime_classes)
                from_module = (
                    isinstance(value, ast.Attribute)
                    and value.attr in ("datetime", "date")
                    and _is_name(value.value, imports.datetime_mods)
                )
                if (from_class or from_module) and not clock_ok:
                    out.append(pf.diag(
                        node, "RPL103",
                        f"wall-clock read datetime {func.attr}() outside "
                        f"the allowlist",
                    ))
                continue

        # from-imported names ------------------------------------------
        if isinstance(func, ast.Name):
            if func.id in imports.random_funcs:
                target = imports.random_funcs[func.id]
                if target.startswith("numpy.random."):
                    tail = target.split(".")[-1]
                    if tail in ("default_rng", "Generator", "RandomState"):
                        if not node.args and not node.keywords:
                            out.append(pf.diag(
                                node, "RPL101",
                                f"{target}() constructed without a seed",
                            ))
                    else:
                        out.append(pf.diag(
                            node, "RPL102",
                            f"call to the global {target} generator",
                        ))
                else:
                    out.append(pf.diag(
                        node, "RPL102",
                        f"call to the global random.{target} generator; "
                        f"RNG must flow from a seeded Random instance "
                        f"parameter",
                    ))
            elif func.id in imports.time_funcs and not clock_ok:
                out.append(pf.diag(
                    node, "RPL103",
                    f"wall-clock read {imports.time_funcs[func.id]}() "
                    f"outside the allowlist",
                ))

    return out


def run(
    files: Iterable[PyFile],
    clock_allowlist: Iterable[str] = DEFAULT_CLOCK_ALLOWLIST,
) -> List[Diagnostic]:
    """The determinism pass over a set of files."""
    allow = frozenset(clock_allowlist)
    out: List[Diagnostic] = []
    for pf in files:
        out.extend(check_file(pf, allow))
    return out


EXPLANATIONS = {
    "RPL101": Explanation(
        code="RPL101",
        title="unseeded RNG construction",
        rationale=(
            "Every simulation result must be reproducible from its "
            "task fingerprint, which covers the seed. An RNG built "
            "without an explicit seed draws entropy from the OS and "
            "silently breaks bit-identical replay."
        ),
        example="rng = random.Random()\nrng = np.random.default_rng()",
        fix="rng = random.Random(seed)  # thread the task seed through",
    ),
    "RPL102": Explanation(
        code="RPL102",
        title="module-level RNG call (global state)",
        rationale=(
            "Calls on the process-global RNG (random.random(), "
            "np.random.rand()) share hidden state across experiments; "
            "run order then changes results even when every task is "
            "seeded."
        ),
        example="jitter = random.random()",
        fix=(
            "rng = random.Random(seed)\n"
            "jitter = rng.random()   # per-task RNG object"
        ),
    ),
    "RPL103": Explanation(
        code="RPL103",
        title="wall-clock read outside the allowlist",
        rationale=(
            "Time enters the system only at its edges (supervisor, "
            "worker, scheduler, pool, node, bench harness, service "
            "server); everything else takes an explicit monotonic "
            "`now`. A clock read elsewhere makes results depend on "
            "when they ran. RPL504 is the flow-aware companion inside "
            "the allowlisted layers."
        ),
        example="started = time.monotonic()   # in core/experiments.py",
        fix=(
            "def run(..., now: float) -> ...:  # accept now explicitly\n"
            "# read the clock in an allowlisted edge module only"
        ),
    ),
}
