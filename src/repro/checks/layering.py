"""RPL2xx — the layering pass.

Derives the intra-package import graph of ``repro.*`` from the ASTs and
enforces the layer DAG (documented in DESIGN.md):

    0  resilience
    1  oracles, traces, floorplan
    2  thermal, memsim, uarch
    3  coupled
    4  core
    5  runner, analysis, validation, checks, bench
    6  service
    7  dst
    8  cli
    9  repro (top-level __init__), __main__

A module may import its own package and any package in a *strictly
lower* layer.  Importing upward is ``RPL201``; importing sideways
(another package in the same layer) is ``RPL202``; a package with no
layer assignment is ``RPL204`` (add new packages to the DAG
deliberately, not by accident).  Package-level strongly connected
components of size > 1 are reported once each as ``RPL203`` — a cycle
always implies at least one RPL201, but the cycle summary names the
whole knot.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.checks.diagnostics import Diagnostic, Explanation, PyFile

#: The repo's layer DAG.  Top-level modules (``repro/cli.py``) are
#: treated as single-module packages.  Subpackages share their parent's
#: layer (``repro.runner.backends.*`` is ``runner``, layer 4): the
#: scheduler/backend split is an *intra*-package seam, invisible to the
#: DAG on purpose — backends may import runner policy modules and vice
#: versa without a layering exemption.
DEFAULT_LAYERS: Dict[str, int] = {
    "resilience": 0,
    "oracles": 1,
    "traces": 1,
    "floorplan": 1,
    "thermal": 2,
    "memsim": 2,
    "uarch": 2,
    "coupled": 3,  # closes the loop over thermal + uarch; core drives it
    "core": 4,
    "runner": 5,
    "analysis": 5,
    "validation": 5,
    "checks": 5,
    "bench": 5,
    "service": 6,  # schedules campaigns; only dst and cli may import it
    "dst": 7,  # simulation harness drives runner + service from above
    "cli": 8,
    "__main__": 9,  # delegates to cli by design
    "repro": 9,  # the top-level __init__ re-exports from anywhere
}


def module_package(module: str, top: str) -> str:
    """Map a dotted module name to its layer-owning package.

    ``repro.thermal.solver`` -> ``thermal``; ``repro.cli`` -> ``cli``;
    ``repro`` itself -> ``repro``.
    """
    parts = module.split(".")
    if parts[0] != top or len(parts) == 1:
        return parts[0] if parts[0] != top else top
    return parts[1]


def _imported_modules(pf: PyFile, top: str) -> List[Tuple[str, ast.AST]]:
    """All ``<top>.*`` modules a file imports, with the import node."""
    found: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(pf.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == top or alias.name.startswith(top + "."):
                    found.append((alias.name, node))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # resolve "from . import x" against the file's module
                base = pf.module.split(".")
                base = base[: len(base) - node.level]
                module = ".".join(base + ([node.module] if node.module else []))
            else:
                module = node.module or ""
            if module == top or module.startswith(top + "."):
                found.append((module, node))
    return found


def run(
    files: Iterable[PyFile],
    layers: Dict[str, int] = None,
    top: str = "repro",
) -> List[Diagnostic]:
    """The layering pass over a set of files."""
    layers = DEFAULT_LAYERS if layers is None else layers
    out: List[Diagnostic] = []
    #: package -> set of packages it imports (for cycle detection).
    graph: Dict[str, Set[str]] = {}
    #: first file seen per package (anchor for cycle diagnostics).
    anchors: Dict[str, PyFile] = {}

    for pf in sorted(files, key=lambda f: f.rel):
        src_pkg = module_package(pf.module, top)
        anchors.setdefault(src_pkg, pf)
        src_layer = layers.get(src_pkg)
        for module, node in _imported_modules(pf, top):
            dst_pkg = module_package(module, top)
            if dst_pkg == src_pkg:
                continue
            graph.setdefault(src_pkg, set()).add(dst_pkg)
            if dst_pkg not in layers:
                out.append(pf.diag(
                    node, "RPL204",
                    f"import of {module!r}: package {dst_pkg!r} has no "
                    f"assigned layer; add it to the layer DAG",
                ))
                continue
            if src_layer is None:
                # the source package itself is unassigned; RPL204 on its
                # own imports would be noise — one finding per edge from
                # the unknown side is enough.
                out.append(pf.diag(
                    node, "RPL204",
                    f"module {pf.module!r}: package {src_pkg!r} has no "
                    f"assigned layer; add it to the layer DAG",
                ))
                continue
            dst_layer = layers[dst_pkg]
            if dst_layer > src_layer:
                out.append(pf.diag(
                    node, "RPL201",
                    f"upward import: {src_pkg!r} (layer {src_layer}) "
                    f"imports {module!r} (layer {dst_layer})",
                ))
            elif dst_layer == src_layer:
                out.append(pf.diag(
                    node, "RPL202",
                    f"cross-layer import: {src_pkg!r} and {dst_pkg!r} are "
                    f"both layer {src_layer}; route through a lower layer",
                ))

    for scc in _cycles(graph):
        cycle = " -> ".join(scc + [scc[0]])
        anchor = anchors.get(scc[0])
        if anchor is None:  # pragma: no cover - scc members always anchored
            continue
        out.append(Diagnostic(
            path=anchor.rel,
            line=1,
            col=0,
            code="RPL203",
            message=f"package import cycle: {cycle}",
            context=f"cycle:{'|'.join(scc)}",
        ))
    return out


def _cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components of size > 1, each sorted, sorted.

    Tarjan's algorithm, iterative (no recursion-limit surprises).
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in graph and succ not in index:
                    continue  # edge to a leaf package: can't close a cycle
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sorted(sccs)


EXPLANATIONS = {
    "RPL201": Explanation(
        code="RPL201",
        title="upward import (lower layer imports higher)",
        rationale=(
            "The package DAG (core -> thermal/power -> arch -> bench "
            "-> runner/service ...) keeps physics importable without "
            "dragging in schedulers. An upward import inverts the "
            "dependency and eventually forces a cycle."
        ),
        example="# in core/units.py\nfrom repro.runner.scheduler import ...",
        fix=(
            "Move the shared piece down a layer, or pass the higher-"
            "layer object in as a parameter/callback."
        ),
    ),
    "RPL202": Explanation(
        code="RPL202",
        title="cross-layer import between same-layer packages",
        rationale=(
            "Sibling packages on one layer are alternatives, not "
            "dependencies (thermal must not import power); coupling "
            "them makes the layer unsplittable."
        ),
        example="# in thermal/solver.py\nfrom repro.power.models import ...",
        fix="Hoist the shared type into the layer below (e.g. core).",
    ),
    "RPL203": Explanation(
        code="RPL203",
        title="package import cycle",
        rationale=(
            "A cycle between packages means neither can be imported, "
            "tested or reasoned about alone; import order starts to "
            "matter and partial-initialisation bugs follow."
        ),
        example="resilience -> runner -> resilience",
        fix=(
            "Break the cycle with an interface module in a lower "
            "layer, or defer one import into the function that needs "
            "it."
        ),
    ),
    "RPL204": Explanation(
        code="RPL204",
        title="import of a package with no assigned layer",
        rationale=(
            "Every top-level package must appear in the layering map; "
            "an unmapped package is invisible to RPL201-203 and its "
            "imports are unchecked."
        ),
        example="from repro.newpkg import thing   # newpkg not in LAYERS",
        fix="Add the package to DEFAULT_LAYERS in checks/layering.py.",
    ),
}
