"""Forward dataflow over :mod:`repro.checks.flow.cfg` graphs.

A small worklist solver over a powerset lattice of hashable *facts*:

* **may** analyses (union meet) answer "does some path reach here with
  this fact?" — used for leak detection (an obligation alive on any
  path to exit is a leak).
* **must** analyses (intersection meet) answer "do all paths establish
  this fact?" — used for the journal/lease discipline (an append is
  only safe if *every* path to it touched the lease table).

Exception edges propagate the *pre*-state of the raising statement:
if a statement raises, its effect (e.g. the binding of a resource
handle) is assumed not to have happened.  All other edges propagate
the post-state.

Transfer functions must be monotone; termination is then guaranteed
for finite fact universes.  A generous step bound backstops the solver
against a non-monotone custom transfer — exceeding it raises
:class:`FixpointDiverged` rather than hanging the lint run.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Optional, Tuple

from repro.checks.flow.cfg import CFG, EXC, CFGNode

Facts = FrozenSet[object]

#: Lattice top — "no information yet" (never visited).  Distinct from
#: the empty set, which is genuine "no facts hold here".
TOP: Optional[Facts] = None

MAY = "may"
MUST = "must"


class FixpointDiverged(RuntimeError):
    """The worklist exceeded its step bound (non-monotone transfer?)."""


class ForwardAnalysis:
    """Base class: subclass and override :meth:`transfer`.

    ``meet`` is ``"may"`` (union) or ``"must"`` (intersection).
    """

    meet = MAY

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    # -- to override ---------------------------------------------------------

    def initial(self) -> Facts:
        """Facts holding at function entry."""
        return frozenset()

    def transfer(self, node: CFGNode, facts: Facts) -> Facts:
        """Facts after executing ``node`` given ``facts`` before it."""
        return facts

    # -- solver --------------------------------------------------------------

    def _merge(self, contribs: list) -> Optional[Facts]:
        known = [c for c in contribs if c is not None]
        if not known:
            return TOP
        if self.meet == MAY:
            return frozenset().union(*known)
        merged = known[0]
        for c in known[1:]:
            merged = merged & c
        return merged

    def solve(
        self, max_steps: Optional[int] = None
    ) -> Tuple[Dict[int, Optional[Facts]], Dict[int, Optional[Facts]]]:
        """Run to fixpoint; returns ``(in_facts, out_facts)`` per node.

        Unreachable nodes keep :data:`TOP` (``None``) — callers must
        skip them rather than report on them.
        """
        cfg = self.cfg
        n = len(cfg.nodes)
        if max_steps is None:
            max_steps = 64 + 16 * n * n
        preds = cfg.predecessors_map()
        in_facts: Dict[int, Optional[Facts]] = dict.fromkeys(cfg.nodes, TOP)
        out_facts: Dict[int, Optional[Facts]] = dict.fromkeys(cfg.nodes, TOP)

        work = deque([cfg.entry])
        queued = {cfg.entry}
        steps = 0
        while work:
            steps += 1
            if steps > max_steps:
                raise FixpointDiverged(
                    f"dataflow over {cfg.name!r} did not converge in "
                    f"{max_steps} steps"
                )
            nid = work.popleft()
            queued.discard(nid)
            node = cfg.nodes[nid]
            if nid == cfg.entry:
                merged: Optional[Facts] = self.initial()
            else:
                contribs = [
                    in_facts[p] if kind == EXC else out_facts[p]
                    for p, kind in preds[nid]
                ]
                merged = self._merge(contribs)
            if merged is TOP:
                continue
            new_out = self.transfer(node, merged)
            if merged == in_facts[nid] and new_out == out_facts[nid]:
                continue
            in_facts[nid] = merged
            out_facts[nid] = new_out
            for succ, _kind in node.succs:
                if succ not in queued:
                    queued.add(succ)
                    work.append(succ)
        return in_facts, out_facts


class GenKillAnalysis(ForwardAnalysis):
    """Convenience base: ``out = (in - kill(node)) | gen(node)``."""

    def gen(self, node: CFGNode) -> Facts:
        return frozenset()

    def kill(self, node: CFGNode) -> Facts:
        return frozenset()

    def transfer(self, node: CFGNode, facts: Facts) -> Facts:
        return (facts - self.kill(node)) | self.gen(node)
