"""Statement-level control-flow graphs over Python ASTs.

The builder lowers one function body (or any statement list) into a
:class:`CFG` of statement nodes joined by labelled edges.  It models:

* branches (``if``/``elif``/``else``, ``match``),
* loops (``for``/``while``, ``break``/``continue``, ``else`` clauses),
* ``try``/``except``/``else``/``finally`` including exception edges
  and abrupt-completion routing (``return``/``raise``/``break``/
  ``continue`` unwinding through pending ``finally`` blocks),
* ``with``/``async with``, ``async for``, and ``await`` (awaits are
  ordinary expressions; :meth:`CFGNode.has_await` exposes them).

Exception modelling is deliberately coarse, tuned for the RPL5xx/6xx
passes rather than for soundness proofs:

* Inside a ``try`` body every statement gets an exception edge to each
  of the try's handlers (and to its ``finally`` head, standing in for
  "no handler matched").  Outside any ``try`` only an explicit
  ``raise`` produces an exception edge (to function exit).
* Exception edges carry the *pre*-state of the raising statement in
  the dataflow framework (the statement's effect is assumed not to
  have happened), which keeps ``x = os.open(...)`` inside a ``try``
  from leaking a phantom obligation into the handler.
* A ``finally`` block is lowered once; its exits fan out to every
  continuation that actually entered it (normal fall-through, return,
  exception propagation, break/continue), which over-approximates
  paths but never loses one.

These choices are documented as false-negative boundaries in DESIGN.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Edge kinds.
NORMAL = "next"       #: ordinary fall-through
TRUE = "true"         #: branch taken
FALSE = "false"       #: branch not taken (incl. loop exhaustion)
EXC = "exc"           #: exception raised by the source statement
BACK = "back"         #: loop back-edge
ABRUPT = "abrupt"     #: return/break/continue routed into a finally
RETURN = "return"     #: edge into exit from a return (or finally after one)

_TRY_TYPES: Tuple[type, ...] = (ast.Try,)
if hasattr(ast, "TryStar"):  # 3.11+
    _TRY_TYPES = (ast.Try, ast.TryStar)

_DEF_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: Hard cap on nodes per function — a runaway guard, far above any
#: real function in this repository.
MAX_NODES = 20_000

Edge = Tuple[int, str]


@dataclass
class CFGNode:
    """One statement (or synthetic entry/exit/region head) in a CFG."""

    nid: int
    kind: str  # entry | exit | stmt | test | with | except | finally
    stmt: Optional[ast.AST] = None
    succs: List[Edge] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    @property
    def label(self) -> str:
        """Stable label for golden tests: ``<AstType>@<line>``."""
        if self.kind in ("entry", "exit"):
            return self.kind
        if self.kind in ("except", "finally"):
            return f"{self.kind}@{self.line}"
        name = type(self.stmt).__name__ if self.stmt is not None else "?"
        return f"{name}@{self.line}"

    def ast_parts(self) -> List[ast.AST]:
        """The AST owned by *this* node only.

        Compound statements own just their header (test, iterable,
        context managers): the body belongs to other nodes.  Nested
        function/class definitions are opaque — their bodies run at
        call time, not here.
        """
        s = self.stmt
        if s is None:
            return []
        if isinstance(s, _DEF_TYPES):
            return []
        if isinstance(s, (ast.If, ast.While)):
            return [s.test]
        if isinstance(s, (ast.For, ast.AsyncFor)):
            return [s.target, s.iter]
        if isinstance(s, (ast.With, ast.AsyncWith)):
            parts: List[ast.AST] = []
            for item in s.items:
                parts.append(item.context_expr)
                if item.optional_vars is not None:
                    parts.append(item.optional_vars)
            return parts
        if isinstance(s, _TRY_TYPES):
            return []
        if isinstance(s, ast.ExceptHandler):
            return [s.type] if s.type is not None else []
        if hasattr(ast, "Match") and isinstance(s, ast.Match):
            return [s.subject]
        return [s]

    def walk(self) -> Iterator[ast.AST]:
        """Walk only the AST owned by this node (no nested blocks)."""
        for part in self.ast_parts():
            yield from ast.walk(part)

    def has_await(self) -> bool:
        return any(isinstance(x, ast.Await) for x in self.walk())


@dataclass
class CFG:
    """A built control-flow graph with single entry/exit."""

    name: str
    func: Optional[ast.AST]
    nodes: Dict[int, CFGNode]
    entry: int
    exit: int

    def successors(self, nid: int) -> List[Edge]:
        return self.nodes[nid].succs

    def predecessors_map(self) -> Dict[int, List[Edge]]:
        """``nid -> [(pred_nid, edge_kind), ...]`` for the whole graph."""
        preds: Dict[int, List[Edge]] = {nid: [] for nid in self.nodes}
        for node in self.nodes.values():
            for dst, kind in node.succs:
                preds[dst].append((node.nid, kind))
        return preds

    def reachable(self, frm: Optional[int] = None) -> Set[int]:
        """Node ids reachable from ``frm`` (default: entry)."""
        start = self.entry if frm is None else frm
        seen = {start}
        stack = [start]
        while stack:
            nid = stack.pop()
            for dst, _kind in self.nodes[nid].succs:
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return seen

    def stmt_nodes(self) -> List[CFGNode]:
        """Non-synthetic nodes, in creation (roughly source) order."""
        return [
            self.nodes[nid]
            for nid in sorted(self.nodes)
            if self.nodes[nid].stmt is not None
        ]

    def edge_list(self) -> List[Tuple[str, str, str]]:
        """Sorted ``(src_label, kind, dst_label)`` triples for goldens."""
        out = set()
        for node in self.nodes.values():
            for dst, kind in node.succs:
                out.add((node.label, kind, self.nodes[dst].label))
        return sorted(out)


@dataclass
class _FinallyFrame:
    first: int
    ends: List[Edge]
    entered: Set[str] = field(default_factory=set)


@dataclass
class _LoopFrame:
    head: int
    breaks: List[Edge] = field(default_factory=list)
    fin_depth: int = 0


#: An exception-edge target: the receiving node plus the finally frame
#: it belongs to (None for except-handler targets).
_ExcTarget = Tuple[int, Optional[_FinallyFrame]]


class _Builder:
    def __init__(self, name: str, func: Optional[ast.AST]) -> None:
        self.name = name
        self.func = func
        self.nodes: Dict[int, CFGNode] = {}
        self._next = 0
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.exc_stack: List[List[_ExcTarget]] = []
        self.fin_stack: List[_FinallyFrame] = []
        self.loop_stack: List[_LoopFrame] = []

    # -- graph primitives ----------------------------------------------------

    def _new(self, kind: str, stmt: Optional[ast.AST] = None) -> int:
        if self._next >= MAX_NODES:
            raise ValueError(
                f"CFG for {self.name!r} exceeds {MAX_NODES} nodes"
            )
        nid = self._next
        self._next += 1
        self.nodes[nid] = CFGNode(nid=nid, kind=kind, stmt=stmt)
        return nid

    def _edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        edge = (dst, kind)
        if edge not in self.nodes[src].succs:
            self.nodes[src].succs.append(edge)

    def _connect(self, incoming: Sequence[Edge], nid: int) -> None:
        for src, kind in incoming:
            self._edge(src, nid, kind)

    def _exc_edges(self, nid: int) -> None:
        """Implicit may-raise edges for a statement inside a try."""
        if self.exc_stack:
            for target, frame in self.exc_stack[-1]:
                self._edge(nid, target, EXC)
                if frame is not None:
                    frame.entered.add("exc")

    # -- abrupt completion ---------------------------------------------------

    def _route_return(self, nid: int) -> None:
        if self.fin_stack:
            for frame in self.fin_stack:
                frame.entered.add("return")
            self._edge(nid, self.fin_stack[-1].first, ABRUPT)
        else:
            self._edge(nid, self.exit, RETURN)

    def _route_raise(self, nid: int) -> None:
        if self.exc_stack:
            self._exc_edges(nid)
        else:
            self._edge(nid, self.exit, EXC)

    def _route_break(self, nid: int) -> None:
        loop = self.loop_stack[-1] if self.loop_stack else None
        fin_depth = loop.fin_depth if loop else 0
        pending = self.fin_stack[fin_depth:]
        if pending:
            for frame in pending:
                frame.entered.add("break")
            self._edge(nid, pending[-1].first, ABRUPT)
        elif loop is not None:
            loop.breaks.append((nid, NORMAL))
        else:  # break outside a loop: syntactically invalid; be safe
            self._edge(nid, self.exit, NORMAL)

    def _route_continue(self, nid: int) -> None:
        loop = self.loop_stack[-1] if self.loop_stack else None
        fin_depth = loop.fin_depth if loop else 0
        pending = self.fin_stack[fin_depth:]
        if pending:
            for frame in pending:
                frame.entered.add("continue")
            self._edge(nid, pending[-1].first, ABRUPT)
        elif loop is not None:
            self._edge(nid, loop.head, BACK)
        else:
            self._edge(nid, self.exit, NORMAL)

    # -- lowering ------------------------------------------------------------

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        dangling = self._block(body, [(self.entry, NORMAL)])
        self._connect(dangling, self.exit)
        return CFG(
            name=self.name,
            func=self.func,
            nodes=self.nodes,
            entry=self.entry,
            exit=self.exit,
        )

    def _block(
        self, stmts: Sequence[ast.stmt], incoming: List[Edge]
    ) -> List[Edge]:
        for stmt in stmts:
            incoming = self._stmt(stmt, incoming)
        return incoming

    def _stmt(self, stmt: ast.stmt, incoming: List[Edge]) -> List[Edge]:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, incoming)
        if isinstance(stmt, ast.While):
            return self._lower_loop(stmt, stmt.body, stmt.orelse, incoming)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._lower_loop(stmt, stmt.body, stmt.orelse, incoming)
        if isinstance(stmt, _TRY_TYPES):
            return self._lower_try(stmt, incoming)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._lower_with(stmt, incoming)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._lower_match(stmt, incoming)
        if isinstance(stmt, ast.Return):
            nid = self._new("stmt", stmt)
            self._connect(incoming, nid)
            self._exc_edges(nid)
            self._route_return(nid)
            return []
        if isinstance(stmt, ast.Raise):
            nid = self._new("stmt", stmt)
            self._connect(incoming, nid)
            self._route_raise(nid)
            return []
        if isinstance(stmt, ast.Break):
            nid = self._new("stmt", stmt)
            self._connect(incoming, nid)
            self._route_break(nid)
            return []
        if isinstance(stmt, ast.Continue):
            nid = self._new("stmt", stmt)
            self._connect(incoming, nid)
            self._route_continue(nid)
            return []
        # Simple statement (incl. nested def/class, treated opaquely).
        nid = self._new("stmt", stmt)
        self._connect(incoming, nid)
        if not isinstance(stmt, _DEF_TYPES):
            self._exc_edges(nid)
        return [(nid, NORMAL)]

    def _lower_if(self, stmt: ast.If, incoming: List[Edge]) -> List[Edge]:
        test = self._new("test", stmt)
        self._connect(incoming, test)
        self._exc_edges(test)
        out = self._block(stmt.body, [(test, TRUE)])
        if stmt.orelse:
            out = out + self._block(stmt.orelse, [(test, FALSE)])
        else:
            out = out + [(test, FALSE)]
        return out

    def _lower_loop(
        self,
        stmt: ast.stmt,
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
        incoming: List[Edge],
    ) -> List[Edge]:
        head = self._new("test", stmt)
        self._connect(incoming, head)
        self._exc_edges(head)
        frame = _LoopFrame(head=head, fin_depth=len(self.fin_stack))
        self.loop_stack.append(frame)
        body_ends = self._block(body, [(head, TRUE)])
        for src, _kind in body_ends:
            self._edge(src, head, BACK)
        self.loop_stack.pop()
        out: List[Edge] = [(head, FALSE)]
        if orelse:
            out = self._block(orelse, out)
        return out + frame.breaks

    def _lower_with(
        self, stmt: ast.stmt, incoming: List[Edge]
    ) -> List[Edge]:
        nid = self._new("with", stmt)
        self._connect(incoming, nid)
        self._exc_edges(nid)
        return self._block(stmt.body, [(nid, NORMAL)])

    def _lower_match(
        self, stmt: "ast.Match", incoming: List[Edge]
    ) -> List[Edge]:
        subj = self._new("test", stmt)
        self._connect(incoming, subj)
        self._exc_edges(subj)
        out: List[Edge] = [(subj, FALSE)]
        for case in stmt.cases:
            out = out + self._block(case.body, [(subj, TRUE)])
        return out

    def _lower_try(self, stmt: ast.stmt, incoming: List[Edge]) -> List[Edge]:
        handlers = list(stmt.handlers)
        handler_nodes = [self._new("except", h) for h in handlers]

        fin_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            # The finally body is lowered *first* (exceptions inside it
            # propagate to the enclosing context, which is still the
            # outer one here) so that its head exists before the try
            # body needs it as an unwind target.
            fin_head = self._new("finally", stmt.finalbody[0])
            fin_ends = self._block(stmt.finalbody, [(fin_head, NORMAL)])
            fin_frame = _FinallyFrame(first=fin_head, ends=fin_ends)

        targets: List[_ExcTarget] = [(h, None) for h in handler_nodes]
        if fin_frame is not None:
            targets.append((fin_frame.first, fin_frame))

        if fin_frame is not None:
            self.fin_stack.append(fin_frame)
        self.exc_stack.append(targets)
        body_ends = self._block(stmt.body, incoming)
        if stmt.orelse:
            # Over-approximation: the else block is lowered with the
            # same exception context as the body (its exceptions are
            # really only caught by outer handlers / this finally).
            body_ends = self._block(stmt.orelse, body_ends)
        self.exc_stack.pop()

        # Handler bodies: exceptions there skip this try's handlers but
        # still traverse its finally.
        if fin_frame is not None:
            self.exc_stack.append([(fin_frame.first, fin_frame)])
        handler_ends: List[Edge] = []
        for hnode, handler in zip(handler_nodes, handlers):
            handler_ends += self._block(handler.body, [(hnode, NORMAL)])
        if fin_frame is not None:
            self.exc_stack.pop()

        normal_ends = body_ends + handler_ends
        if fin_frame is None:
            return normal_ends

        self.fin_stack.pop()
        self._connect(normal_ends, fin_frame.first)
        out = list(fin_frame.ends)
        if "return" in fin_frame.entered:
            for src, _kind in fin_frame.ends:
                if self.fin_stack:
                    self.fin_stack[-1].entered.add("return")
                    self._edge(src, self.fin_stack[-1].first, ABRUPT)
                else:
                    self._edge(src, self.exit, RETURN)
        if "exc" in fin_frame.entered:
            # ABRUPT, not EXC: these edges model an in-flight exception
            # *continuing* to unwind after the finally body ran to
            # completion, so they carry the body's post-state (a close
            # in the finally has already happened on this path).
            for src, _kind in fin_frame.ends:
                if self.exc_stack:
                    for target, frame in self.exc_stack[-1]:
                        self._edge(src, target, ABRUPT)
                        if frame is not None:
                            frame.entered.add("exc")
                else:
                    self._edge(src, self.exit, ABRUPT)
        if "break" in fin_frame.entered and self.loop_stack:
            self.loop_stack[-1].breaks.extend(fin_frame.ends)
        if "continue" in fin_frame.entered and self.loop_stack:
            for src, _kind in fin_frame.ends:
                self._edge(src, self.loop_stack[-1].head, BACK)
        return out


def build_cfg(
    func: ast.AST, name: Optional[str] = None
) -> CFG:
    """Build a CFG for one function definition (or module body)."""
    label = name or getattr(func, "name", "<module>")
    body = getattr(func, "body", None)
    if body is None:
        raise TypeError(f"cannot build a CFG for {type(func).__name__}")
    return _Builder(label, func).build(body)


@dataclass
class FunctionCFG:
    """A function definition paired with its CFG and lexical context."""

    qualname: str
    cls: Optional[ast.ClassDef]
    func: ast.AST  # FunctionDef | AsyncFunctionDef

    @property
    def is_async(self) -> bool:
        return isinstance(self.func, ast.AsyncFunctionDef)

    @property
    def cfg(self) -> CFG:
        if not hasattr(self, "_cfg"):
            self._cfg = build_cfg(self.func, name=self.qualname)
        return self._cfg

    def param_names(self) -> List[str]:
        a = self.func.args
        params = list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
        if a.vararg:
            params.append(a.vararg)
        if a.kwarg:
            params.append(a.kwarg)
        return [p.arg for p in params]


def function_cfgs(tree: ast.AST) -> List[FunctionCFG]:
    """All function definitions in a module, with qualnames and class."""
    out: List[FunctionCFG] = []

    def visit(
        node: ast.AST, prefix: str, cls: Optional[ast.ClassDef]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append(FunctionCFG(qualname=qual, cls=cls, func=child))
                visit(child, f"{qual}.", cls)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", child)

    visit(tree, "", None)
    return out
