"""RPL6xx — async/service hygiene over ``repro.service``.

Four rules on the CFG/dataflow engine:

* **RPL601** — no blocking call may be *reachable* inside an
  ``async def``: ``time.sleep``, ``subprocess.run``, blocking
  socket/file I/O, ``fsync`` — directly or through a same-file sync
  helper (one-module transitive closure).  Flow-sensitive: code after
  an unconditional ``return`` is dead and not reported.
* **RPL602** — a job record fetched from the shared jobstore is
  *stale* after any ``await``: another coroutine or executor thread
  may have transitioned it.  Mutating the store with a stale record
  (``mark_running`` et al.) without re-validating ``job.state`` first
  is a lost-update bug.  May-analysis: one await-crossing path to the
  mutation is a finding.
* **RPL603** — the service's status-code contract is pinned
  (200/400/404/408/429/503, never an implicit 500).  Every
  ``Response``/``shed`` construction must carry a literal pinned
  status (or forward a parameter whose call sites all do), and every
  handler return path must produce a Response.
* **RPL604** — no exception may escape a route handler: an uncaught
  ``raise``, or a call to a same-file helper whose escaping-raise
  summary is non-empty, would surface as the implicit 500 the
  contract forbids.

Scope: RPL601/602 run wherever ``async def`` appears; RPL603/604 are
service-specific and run over ``service/``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.checks.diagnostics import Diagnostic, Explanation, PyFile
from repro.checks.flow.cfg import CFGNode, FunctionCFG, function_cfgs
from repro.checks.flow.dataflow import ForwardAnalysis
from repro.checks.flow.summaries import (
    ModuleSummaries,
    blocking_target,
    catches,
    dotted_name,
    walk_shallow,
)

SERVICE_PREFIX = "service/"

#: The pinned status-code contract (service/middleware.py REASONS).
ALLOWED_STATUS = frozenset({200, 400, 404, 408, 429, 503})

#: JobStore methods that mutate a job record passed to them.
JOBSTORE_MUTATORS = frozenset({
    "mark_running", "mark_done", "mark_failed", "mark_requeued",
    "mark_simulated", "reset_for_retry", "discard", "note_coalesced",
})

#: JobStore methods that (re-)fetch a live record.
JOBSTORE_GETTERS = frozenset({"get", "get_or_create"})

#: Functions treated as route handlers for RPL603/604.
_HANDLER_PREFIX = "handle_"
_HANDLER_NAMES = frozenset({"route"})


def _is_jobstore_chain(chain: Optional[str]) -> bool:
    if chain is None:
        return False
    return "jobs" in chain.split(".")


# -- RPL601: blocking calls reachable in async defs --------------------------


def _check_async_blocking(
    pf: PyFile, fc: FunctionCFG, summaries: ModuleSummaries
) -> List[Diagnostic]:
    cfg = fc.cfg
    reachable = cfg.reachable()
    out: List[Diagnostic] = []
    seen: Set[int] = set()
    for node in cfg.stmt_nodes():
        if node.nid not in reachable:
            continue
        for sub in node.walk():
            if not isinstance(sub, ast.Call) or id(sub) in seen:
                continue
            seen.add(id(sub))
            prim = blocking_target(sub, summaries.aliases)
            if prim is not None:
                out.append(pf.diag(
                    sub,
                    "RPL601",
                    f"{fc.qualname} is async but calls blocking "
                    f"{prim}(); use the asyncio equivalent or "
                    f"run_in_executor",
                ))
                continue
            callee = summaries.resolve_call(
                sub, fc.cls.name if fc.cls else None
            )
            if callee is None:
                continue
            chain = summaries.blocking_chain(callee)
            if chain is not None:
                out.append(pf.diag(
                    sub,
                    "RPL601",
                    f"{fc.qualname} is async but calls "
                    f"{callee.split('.')[-1]}(), which blocks "
                    f"({chain})",
                ))
    return out


# -- RPL602: stale jobstore state across await -------------------------------


def _fresh(var: str) -> Tuple[str, str]:
    return ("fresh", var)


def _stale(var: str) -> Tuple[str, str]:
    return ("stale", var)


class _StaleStateAnalysis(ForwardAnalysis):
    """May-analysis: which job bindings have crossed an await."""

    meet = "may"

    def __init__(self, fc: FunctionCFG) -> None:
        super().__init__(fc.cfg)
        self.fc = fc
        # Precompute per-node effects.
        self.bindings: Dict[int, Set[str]] = {}
        self.revalidations: Dict[int, Set[str]] = {}
        self.uses: Dict[int, List[Tuple[ast.Call, Set[str]]]] = {}
        self.awaits: Set[int] = set()
        self.job_params = self._job_params()
        for node in fc.cfg.stmt_nodes():
            nid = node.nid
            if node.has_await():
                self.awaits.add(nid)
            for sub in node.walk():
                if isinstance(sub, ast.Assign):
                    self._note_binding(nid, sub)
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "state"
                    and isinstance(sub.value, ast.Name)
                ):
                    self.revalidations.setdefault(nid, set()).add(
                        sub.value.id
                    )
                if isinstance(sub, ast.Call) and isinstance(
                    sub.func, ast.Attribute
                ):
                    chain = dotted_name(sub.func.value)
                    if (
                        _is_jobstore_chain(chain)
                        and sub.func.attr in JOBSTORE_MUTATORS
                    ):
                        vars_used = {
                            a.id for a in sub.args
                            if isinstance(a, ast.Name)
                        }
                        if vars_used:
                            self.uses.setdefault(nid, []).append(
                                (sub, vars_used)
                            )

    def _job_params(self) -> Set[str]:
        out: Set[str] = set()
        args = self.fc.func.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            ann = arg.annotation
            name = None
            if isinstance(ann, ast.Name):
                name = ann.id
            elif isinstance(ann, ast.Attribute):
                name = ann.attr
            elif isinstance(ann, ast.Constant) and isinstance(
                ann.value, str
            ):
                name = ann.value.split(".")[-1]
            if name == "Job":
                out.add(arg.arg)
        return out

    def _note_binding(self, nid: int, assign: ast.Assign) -> None:
        value = assign.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in JOBSTORE_GETTERS
            and _is_jobstore_chain(dotted_name(value.func.value))
        ):
            return
        if len(assign.targets) != 1:
            return
        tgt = assign.targets[0]
        if isinstance(tgt, ast.Name):
            self.bindings.setdefault(nid, set()).add(tgt.id)
        elif isinstance(tgt, ast.Tuple) and tgt.elts and isinstance(
            tgt.elts[0], ast.Name
        ):
            # job, created = self.jobs.get_or_create(...)
            self.bindings.setdefault(nid, set()).add(tgt.elts[0].id)

    def initial(self):
        return frozenset(_fresh(v) for v in self.job_params)

    def transfer(self, node: CFGNode, facts):
        nid = node.nid
        out = set(facts)
        if nid in self.awaits:
            for kind, var in list(out):
                if kind == "fresh":
                    out.discard(_fresh(var))
                    out.add(_stale(var))
        for var in self.bindings.get(nid, ()):
            out.discard(_stale(var))
            out.add(_fresh(var))
        for var in self.revalidations.get(nid, ()):
            if _stale(var) in out:
                out.discard(_stale(var))
                out.add(_fresh(var))
        return frozenset(out)


def _check_stale_state(pf: PyFile, fc: FunctionCFG) -> List[Diagnostic]:
    analysis = _StaleStateAnalysis(fc)
    if not analysis.uses:
        return []
    in_facts, _ = analysis.solve()
    out: List[Diagnostic] = []
    for nid, uses in analysis.uses.items():
        facts = in_facts[nid]
        if facts is None:
            continue
        for call, vars_used in uses:
            stale = sorted(
                v for v in vars_used if _stale(v) in facts
            )
            for var in stale:
                out.append(pf.diag(
                    call,
                    "RPL602",
                    f"{fc.qualname} mutates the jobstore with "
                    f"{var!r} fetched before an await; re-check "
                    f"{var}.state (another coroutine may have "
                    f"transitioned it)",
                ))
    return out


# -- RPL603: pinned status-code contract -------------------------------------


def _response_ctor_names(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
    """Local names bound to the Response class and the shed helper."""
    responses: Set[str] = set()
    sheds: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module.endswith("middleware")
        ):
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name == "Response":
                    responses.add(local)
                elif alias.name == "shed":
                    sheds.add(local)
        elif isinstance(node, ast.ClassDef) and node.name == "Response":
            responses.add(node.name)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and node.name == "shed":
            sheds.add(node.name)
    return responses, sheds


def _status_arg(call: ast.Call) -> Optional[ast.AST]:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "status":
            return kw.value
    return None


def _check_status_contract(pf: PyFile) -> List[Diagnostic]:
    tree = pf.tree
    responses, sheds = _response_ctor_names(tree)
    ctors = responses | sheds
    if not ctors:
        return []
    fcs = function_cfgs(tree)
    out: List[Diagnostic] = []
    #: functions that forward a status parameter: name -> param name
    forwarders: Dict[str, str] = {}

    def enclosing_params(fc: FunctionCFG) -> Set[str]:
        return set(fc.param_names())

    # Pass 1: literal checks + forwarder discovery, per function.
    for fc in fcs:
        params = enclosing_params(fc)
        for sub in walk_shallow(fc.func):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name not in ctors:
                continue
            status = _status_arg(sub)
            if status is None:
                continue
            if isinstance(status, ast.Constant) and isinstance(
                status.value, int
            ):
                if status.value not in ALLOWED_STATUS:
                    allowed = ", ".join(
                        str(s) for s in sorted(ALLOWED_STATUS)
                    )
                    out.append(pf.diag(
                        sub,
                        "RPL603",
                        f"{fc.qualname} builds a response with status "
                        f"{status.value}, outside the pinned contract "
                        f"({allowed})",
                    ))
            elif isinstance(status, ast.Name) and status.id in params:
                forwarders[fc.func.name] = status.id
            else:
                out.append(pf.diag(
                    sub,
                    "RPL603",
                    f"{fc.qualname} builds a response whose status is "
                    f"not a literal pinned code (cannot be proven "
                    f"against the contract)",
                ))

    # Pass 2: call sites of forwarders must pass literal pinned codes.
    for fc in fcs:
        for sub in walk_shallow(fc.func):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name not in forwarders or name in ctors:
                continue
            status = _status_arg(sub)
            if status is None:
                continue
            if isinstance(status, ast.Constant) and isinstance(
                status.value, int
            ):
                if status.value not in ALLOWED_STATUS:
                    out.append(pf.diag(
                        sub,
                        "RPL603",
                        f"{fc.qualname} calls {name}() with status "
                        f"{status.value}, outside the pinned contract",
                    ))
            else:
                out.append(pf.diag(
                    sub,
                    "RPL603",
                    f"{fc.qualname} calls {name}() with a non-literal "
                    f"status (cannot be proven against the contract)",
                ))

    # Pass 3: handler return paths must produce a Response.
    producer_names = set(ctors)
    for fc in fcs:
        if _is_handler(fc) or _returns_response(fc, producer_names):
            producer_names.add(fc.func.name)
    for fc in fcs:
        if not _is_handler(fc):
            continue
        out.extend(_check_handler_returns(pf, fc, producer_names))
    return out


def _is_handler(fc: FunctionCFG) -> bool:
    name = fc.func.name
    return name.startswith(_HANDLER_PREFIX) or name in _HANDLER_NAMES


def _returns_response(fc: FunctionCFG, producers: Set[str]) -> bool:
    for sub in walk_shallow(fc.func):
        if isinstance(sub, ast.Return) and isinstance(
            sub.value, ast.Call
        ):
            name = dotted_name(sub.value.func)
            if name in producers:
                return True
    return False


def _check_handler_returns(
    pf: PyFile, fc: FunctionCFG, producers: Set[str]
) -> List[Diagnostic]:
    # Names assigned from producer calls anywhere in the function are
    # response-like (flow-insensitive, deliberately permissive).
    response_names: Set[str] = set()
    for sub in walk_shallow(fc.func):
        if (
            isinstance(sub, ast.Assign)
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
            and isinstance(sub.value, ast.Call)
        ):
            name = dotted_name(sub.value.func)
            if name in producers:
                response_names.add(sub.targets[0].id)
    out: List[Diagnostic] = []
    for sub in walk_shallow(fc.func):
        if not isinstance(sub, ast.Return):
            continue
        value = sub.value
        ok = False
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            ok = name in producers
        elif isinstance(value, ast.Name):
            ok = value.id in response_names
        if not ok:
            out.append(pf.diag(
                sub,
                "RPL603",
                f"{fc.qualname} has a return path that does not "
                f"produce a Response with a pinned status code",
            ))
    return out


# -- RPL604: exceptions escaping handlers ------------------------------------


def _check_handler_raises(
    pf: PyFile, summaries: ModuleSummaries
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for qual, info in summaries.functions.items():
        name = qual.split(".")[-1]
        if not (
            name.startswith(_HANDLER_PREFIX) or name in _HANDLER_NAMES
        ):
            continue
        # Direct raises that no lexically-enclosing handler catches
        # are found by the summary itself …
        for exc in sorted(info.escapes & _direct_raises(info)):
            out.append(pf.diag(
                info.node,
                "RPL604",
                f"{qual} can raise {exc} out of the handler; the "
                f"client would see an implicit 500, which the "
                f"contract forbids",
            ))
        # … and calls to same-file helpers whose summary escapes.
        for call, callee, catchers in info.calls:
            callee_info = summaries.functions[callee]
            escaping = sorted(
                exc for exc in callee_info.escapes
                if not catches(catchers, exc)
            )
            if escaping:
                out.append(pf.diag(
                    call,
                    "RPL604",
                    f"{qual} calls {callee.split('.')[-1]}(), which "
                    f"can raise {', '.join(escaping)} out of the "
                    f"handler (implicit 500)",
                ))
    return out


def _direct_raises(info) -> Set[str]:
    out: Set[str] = set()
    for sub in walk_shallow(info.node):
        if isinstance(sub, ast.Raise):
            out.add(ModuleSummaries._raise_name(sub))
    return out


# -- pass entry point --------------------------------------------------------


def check_file(pf: PyFile) -> List[Diagnostic]:
    if pf.tree is None:
        return []
    out: List[Diagnostic] = []
    fcs = function_cfgs(pf.tree)
    has_async = any(fc.is_async for fc in fcs)
    summaries = (
        ModuleSummaries(pf.tree)
        if has_async or pf.rel.startswith(SERVICE_PREFIX)
        else None
    )
    for fc in fcs:
        if not fc.is_async:
            continue
        out.extend(_check_async_blocking(pf, fc, summaries))
        out.extend(_check_stale_state(pf, fc))
    if pf.rel.startswith(SERVICE_PREFIX):
        out.extend(_check_status_contract(pf))
        out.extend(_check_handler_raises(pf, summaries))
    return out


def run(files: List[PyFile]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for pf in files:
        if pf.parse_error:
            continue
        out.extend(check_file(pf))
    return out


EXPLANATIONS = {
    "RPL601": Explanation(
        code="RPL601",
        title="blocking call reachable inside async def",
        rationale=(
            "The service runs every handler and dispatcher coroutine "
            "on one event loop; a single time.sleep, subprocess.run "
            "or synchronous file/socket call freezes every in-flight "
            "request for its full duration. The check walks the "
            "coroutine's CFG (so dead code is ignored) and follows "
            "same-file sync helpers one module deep."
        ),
        example=(
            "async def _process(self, fp):\n"
            "    time.sleep(0.2)            # stalls the event loop\n"
            "    data = helper()            # helper calls fsync"
        ),
        fix=(
            "async def _process(self, fp):\n"
            "    await asyncio.sleep(0.2)\n"
            "    data = await loop.run_in_executor(pool, helper)"
        ),
    ),
    "RPL602": Explanation(
        code="RPL602",
        title="stale jobstore record used across an await",
        rationale=(
            "An await is a scheduling point: executor threads and "
            "other coroutines mutate the shared jobstore while this "
            "coroutine is parked. A Job fetched before the await may "
            "be requeued, failed or completed by the time control "
            "returns; calling mark_running/mark_done/mark_failed with "
            "it anyway overwrites that transition (a lost update). "
            "Re-reading job.state after the await re-validates the "
            "record."
        ),
        example=(
            "job = self.jobs.get(fp)\n"
            "await asyncio.sleep(backoff)\n"
            "self.jobs.mark_running(job)    # job may be gone already"
        ),
        fix=(
            "job = self.jobs.get(fp)\n"
            "await asyncio.sleep(backoff)\n"
            "if job.state != QUEUED:\n"
            "    return                      # someone else moved it\n"
            "self.jobs.mark_running(job)"
        ),
    ),
    "RPL603": Explanation(
        code="RPL603",
        title="status code outside the pinned contract",
        rationale=(
            "The chaos acceptance test pins the service to "
            "200/400/404/408/429/503 — clients build retry logic on "
            "exactly those codes. Every Response/shed construction "
            "must therefore carry a literal pinned status (or forward "
            "a parameter that provably does), and every handler "
            "return path must produce a Response; anything else can "
            "leak an unvetted code to the wire."
        ),
        example=(
            "return Response(500, {'error': msg})   # 500 is banned\n"
            "return {'ok': True}                    # not a Response"
        ),
        fix=(
            "return shed(503, why, retry_after_s)   # a pinned code\n"
            "return Response(200, payload)"
        ),
    ),
    "RPL604": Explanation(
        code="RPL604",
        title="exception can escape a route handler",
        rationale=(
            "An exception that escapes a handler surfaces as the "
            "implicit 500 the contract forbids (the asyncio transport "
            "would also log-and-drop mid-write). Handlers must absorb "
            "every exception they or their same-file helpers can "
            "raise and convert it to a pinned-status Response."
        ),
        example=(
            "def handle_submit(app, request, now):\n"
            "    sub = _parse_submission(app, request)  # raises "
            "ValueError"
        ),
        fix=(
            "def handle_submit(app, request, now):\n"
            "    try:\n"
            "        sub = _parse_submission(app, request)\n"
            "    except ValueError as exc:\n"
            "        return Response(400, {'error': str(exc)})"
        ),
    ),
}
