"""RPL5xx — flow-sensitive concurrency discipline over ``repro.runner``.

Four rules, all built on the CFG/dataflow engine in this package:

* **RPL501** — every ``LeaseTable.claim`` must be discharged on every
  path out of the claiming function: released/renewed/evicted on the
  same table, or the table/custody handed off (returned, stored on an
  attribute, passed to another callee).  A claim on ``self.<table>``
  shifts the obligation to the class: some method of the class must
  discharge leases on that table.
* **RPL502** — in a class that owns both a journal and a lease table,
  a journal append is only trustworthy if *every* path from function
  entry to the append interacts with the lease table first (or the
  function receives a lease explicitly).  This is a must-analysis: a
  single lease-blind path to an append is a finding.  Calls to a
  same-class funnel method that itself appends (``_journal_append``)
  count as appends at the call site — indirection does not launder
  the custody obligation.
* **RPL503** — subprocess/socket/file resources created in runner code
  must be closed on every path, handed off, or managed by a ``with``
  block.  A resource stored on ``self`` must be closed by some method
  of the same class.
* **RPL504** — a function that takes an explicit monotonic ``now``
  (or ``deadline``) parameter must not also read the ambient clock;
  mixing the two silently breaks replayability.  This is the
  flow-aware companion to RPL103's call-site allowlist.

Scope: RPL501–503 run over ``runner/``; RPL504 over ``runner/`` and
``service/`` (the layers that thread explicit time).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.checks.diagnostics import Diagnostic, Explanation, PyFile
from repro.checks.flow.cfg import CFGNode, FunctionCFG, function_cfgs
from repro.checks.flow.dataflow import (
    ForwardAnalysis,
    GenKillAnalysis,
)
from repro.checks.flow.summaries import (
    Aliases,
    call_target,
    dotted_name,
)

#: Files the lease/journal/resource rules apply to.
RUNNER_PREFIX = "runner/"
#: Files the explicit-now rule applies to.
CLOCK_PREFIXES = ("runner/", "service/")

#: Method names that discharge a lease obligation on a table.
LEASE_DISCHARGE = frozenset({
    "release", "renew", "evict_executor", "expired", "pop", "clear",
})

#: Constructors whose results carry a close obligation.
RESOURCE_CREATORS = frozenset({
    "subprocess.Popen",
    "socket.socket",
    "socket.create_connection",
    "os.fdopen",
    "os.open",
    "open",
    "io.open",
})

#: Method names that discharge a resource obligation.
RESOURCE_DISCHARGE = frozenset({
    "close", "kill", "terminate", "cleanup", "shutdown", "stop",
    "kill_all", "release", "detach",
})

#: Parameter names that mean "time is threaded explicitly here".
CLOCK_PARAMS = frozenset({"now", "deadline", "now_mono", "now_s"})

#: Ambient clock reads (canonical dotted names, alias-resolved).
AMBIENT_CLOCKS = frozenset({
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.monotonic_ns",
    "time.perf_counter_ns",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
})


def _chain_of(expr: ast.AST) -> Optional[str]:
    return dotted_name(expr)


def _is_lease_chain(chain: str, lease_locals: Set[str]) -> bool:
    if chain in lease_locals:
        return True
    last = chain.split(".")[-1]
    return "lease" in last.lower()


def _lease_locals(func: ast.AST) -> Set[str]:
    """Local names assigned from a ``LeaseTable(...)`` constructor."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            target = _chain_of(node.value.func)
            if target is not None and target.split(".")[-1] == "LeaseTable":
                out.add(node.targets[0].id)
    return out


def _mentions_lease(node: CFGNode, lease_locals: Set[str]) -> bool:
    """Any dotted chain in this statement that names a lease table."""
    for sub in node.walk():
        if isinstance(sub, (ast.Attribute, ast.Name)):
            chain = _chain_of(sub)
            if chain is not None and _is_lease_chain(chain, lease_locals):
                return True
    return False


def _escapes_var(node: CFGNode, var: str) -> bool:
    """Does this statement hand custody of ``var`` to someone else?

    Returning it, yielding it, storing it anywhere (attribute,
    subscript, re-binding), or passing it as a call *argument* (not
    just as a method receiver) all transfer the close obligation.
    """
    for sub in node.walk():
        if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = sub.value
            if value is not None and _contains_name(value, var):
                return True
        if isinstance(sub, ast.Assign):
            if _contains_name(sub.value, var):
                return True
        if isinstance(sub, ast.Call):
            args: List[ast.AST] = list(sub.args)
            args += [kw.value for kw in sub.keywords]
            for arg in args:
                if _contains_name(arg, var):
                    return True
    return False


def _contains_name(tree: ast.AST, var: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == var for n in ast.walk(tree)
    )


def _discharges(node: CFGNode, chain: str, methods: frozenset) -> bool:
    """A ``<chain>.<method>(...)`` call with method in ``methods``."""
    for sub in node.walk():
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in methods
        ):
            recv = _chain_of(sub.func.value)
            if recv == chain or (
                recv is not None and recv.startswith(chain + ".")
            ):
                return True
    return False


def _class_discharges(
    cls: ast.ClassDef, chain: str, methods: frozenset
) -> bool:
    """Does any code in the class discharge obligations on ``chain``?"""
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in methods
        ):
            recv = _chain_of(node.func.value)
            if recv == chain or (
                recv is not None and recv.startswith(chain + ".")
            ):
                return True
    return False


# -- RPL501: lease claims ----------------------------------------------------


class _LeaseLeakAnalysis(GenKillAnalysis):
    """May-analysis: which claimed tables are still undischarged."""

    meet = "may"

    def __init__(self, fc: FunctionCFG, lease_locals: Set[str]) -> None:
        super().__init__(fc.cfg)
        self.lease_locals = lease_locals
        self.claims: Dict[str, CFGNode] = {}
        #: chain -> local name the claim result is bound to (if any);
        #: returning/passing that value transfers custody to the caller.
        self.bound: Dict[str, str] = {}
        for node in fc.cfg.stmt_nodes():
            for sub in node.walk():
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "claim"
                ):
                    chain = _chain_of(sub.func.value)
                    if chain and _is_lease_chain(chain, lease_locals):
                        self.claims.setdefault(chain, node)
                        stmt = node.stmt
                        if (
                            isinstance(stmt, ast.Assign)
                            and len(stmt.targets) == 1
                            and isinstance(stmt.targets[0], ast.Name)
                        ):
                            self.bound.setdefault(
                                chain, stmt.targets[0].id
                            )

    def gen(self, node: CFGNode):
        out = set()
        for chain in self.claims:
            for sub in node.walk():
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "claim"
                    and _chain_of(sub.func.value) == chain
                ):
                    out.add(chain)
        return frozenset(out)

    def kill(self, node: CFGNode):
        out = set()
        for chain in self.claims:
            if _discharges(node, chain, LEASE_DISCHARGE):
                out.add(chain)
                continue
            root = chain.split(".")[0]
            if root != "self" and _escapes_var(node, root):
                out.add(chain)
                continue
            bound = self.bound.get(chain)
            if (
                bound is not None
                and node is not self.claims[chain]
                and _escapes_var(node, bound)
            ):
                out.add(chain)
        return frozenset(out)


def _check_leases(pf: PyFile, fc: FunctionCFG) -> List[Diagnostic]:
    lease_locals = _lease_locals(fc.func)
    analysis = _LeaseLeakAnalysis(fc, lease_locals)
    if not analysis.claims:
        return []
    out: List[Diagnostic] = []
    self_chains = [c for c in analysis.claims if c.startswith("self.")]
    local_chains = {
        c: n for c, n in analysis.claims.items()
        if not c.startswith("self.")
    }
    for chain in self_chains:
        # Custody belongs to the class: some method must discharge.
        if fc.cls is None or not _class_discharges(
            fc.cls, chain, LEASE_DISCHARGE
        ):
            node = analysis.claims[chain]
            out.append(pf.diag(
                node.stmt,
                "RPL501",
                f"{fc.qualname} claims leases on {chain} but no method "
                f"of the class ever releases, renews or evicts them",
            ))
    if local_chains:
        in_facts, _out_facts = analysis.solve()
        leaked = in_facts[fc.cfg.exit] or frozenset()
        for chain in sorted(c for c in leaked if c in local_chains):
            node = local_chains[chain]
            out.append(pf.diag(
                node.stmt,
                "RPL501",
                f"{fc.qualname} claims a lease on {chain} that is not "
                f"released, renewed or evicted on every path out of "
                f"the function (exception paths included)",
            ))
    return out


# -- RPL502: journal appends under lease custody -----------------------------


def _class_custody_attrs(
    cls: ast.ClassDef,
) -> Tuple[Set[str], Set[str]]:
    """``(journal_chains, lease_chains)`` owned by this class."""
    journals: Set[str] = set()
    leases: Set[str] = set()
    for node in ast.walk(cls):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
        ):
            continue
        chain = _chain_of(node.targets[0])
        if chain is None or not chain.startswith("self."):
            continue
        attr = chain.split(".")[-1].lower()
        ctor = ""
        if isinstance(node.value, ast.Call):
            ctor = (_chain_of(node.value.func) or "").split(".")[-1]
        if "journal" in attr or ctor == "Journal":
            journals.add(chain)
        if "lease" in attr or ctor == "LeaseTable":
            leases.add(chain)
    return journals, leases


class _LeaseCustodyAnalysis(ForwardAnalysis):
    """Must-analysis: has every path touched the lease table yet?"""

    meet = "must"
    FACT = "lease-custody"

    def __init__(
        self, fc: FunctionCFG, lease_locals: Set[str], seeded: bool
    ) -> None:
        super().__init__(fc.cfg)
        self.lease_locals = lease_locals
        self.seeded = seeded

    def initial(self):
        return frozenset({self.FACT}) if self.seeded else frozenset()

    def transfer(self, node: CFGNode, facts):
        if _mentions_lease(node, self.lease_locals):
            return facts | {self.FACT}
        return facts


def _journal_funnels(cls: ast.ClassDef, journals: Set[str]) -> Set[str]:
    """Method names that forward to a journal append.

    A class commonly funnels every append through one helper (e.g. a
    ``_journal_append`` that also notifies an event hook).  Custody is
    still the *caller's* obligation — treating funnel calls as appends
    keeps the must-analysis from being blinded by the indirection.
    """
    out: Set[str] = set()
    for node in cls.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "append"
                and _chain_of(sub.func.value) in journals
            ):
                out.add(node.name)
                break
    return out


def _check_journal_discipline(
    pf: PyFile, fcs: List[FunctionCFG]
) -> List[Diagnostic]:
    by_class: Dict[str, List[FunctionCFG]] = {}
    classes: Dict[str, ast.ClassDef] = {}
    for fc in fcs:
        if fc.cls is not None:
            by_class.setdefault(fc.cls.name, []).append(fc)
            classes[fc.cls.name] = fc.cls
    out: List[Diagnostic] = []
    for cls_name, members in by_class.items():
        journals, leases = _class_custody_attrs(classes[cls_name])
        if not journals or not leases:
            continue  # journal-only (or lease-only) classes are exempt
        funnels = _journal_funnels(classes[cls_name], journals)
        for fc in members:
            out.extend(_check_journal_fn(pf, fc, journals, funnels))
    return out


def _check_journal_fn(
    pf: PyFile,
    fc: FunctionCFG,
    journals: Set[str],
    funnels: Set[str] = frozenset(),
) -> List[Diagnostic]:
    append_nodes: List[CFGNode] = []
    for node in fc.cfg.stmt_nodes():
        for sub in node.walk():
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
            ):
                continue
            recv = _chain_of(sub.func.value)
            direct = sub.func.attr == "append" and recv in journals
            # A call to a same-class funnel is an append too; the
            # funnel's own body is analyzed separately (and recursion
            # is excluded so it isn't held to its callers' obligation).
            via_funnel = (
                sub.func.attr in funnels
                and recv == "self"
                and fc.func.name != sub.func.attr
            )
            if direct or via_funnel:
                append_nodes.append(node)
                break
    if not append_nodes:
        return []
    lease_locals = _lease_locals(fc.func)
    seeded = any(
        "lease" in name.lower() for name in fc.param_names()
    )
    analysis = _LeaseCustodyAnalysis(fc, lease_locals, seeded)
    in_facts, _ = analysis.solve()
    out: List[Diagnostic] = []
    for node in append_nodes:
        facts = in_facts[node.nid]
        if facts is None:
            continue  # unreachable
        if _LeaseCustodyAnalysis.FACT not in facts and not (
            _mentions_lease(node, lease_locals)
        ):
            out.append(pf.diag(
                node.stmt,
                "RPL502",
                f"{fc.qualname} appends to the journal on a path that "
                f"never touched the lease table; journal lines must "
                f"reflect lease-held work",
            ))
    return out


# -- RPL503: resource close discipline ---------------------------------------


class _ResourceLeakAnalysis(GenKillAnalysis):
    """May-analysis over locally-created, unclosed resources."""

    meet = "may"

    def __init__(
        self, fc: FunctionCFG, aliases: Aliases
    ) -> None:
        super().__init__(fc.cfg)
        self.creations: Dict[str, Tuple[CFGNode, str]] = {}
        self.attr_creations: List[Tuple[CFGNode, str, str]] = []
        self.bare_creations: List[Tuple[CFGNode, str]] = []
        for node in fc.cfg.stmt_nodes():
            if node.kind == "with":
                continue  # `with open(...)` manages its own close
            stmt = node.stmt
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.value, ast.Call)
            ):
                target = call_target(stmt.value, aliases)
                if target not in RESOURCE_CREATORS:
                    continue
                tgt = stmt.targets[0]
                if isinstance(tgt, ast.Name):
                    self.creations.setdefault(tgt.id, (node, target))
                elif isinstance(tgt, ast.Attribute):
                    chain = _chain_of(tgt)
                    if chain is not None and chain.startswith("self."):
                        self.attr_creations.append((node, chain, target))
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Call
            ):
                target = call_target(stmt.value, aliases)
                if target in RESOURCE_CREATORS:
                    self.bare_creations.append((node, target))

    def gen(self, node: CFGNode):
        return frozenset(
            var for var, (n, _t) in self.creations.items()
            if n.nid == node.nid
        )

    def kill(self, node: CFGNode):
        out = set()
        for var in self.creations:
            if _discharges(node, var, RESOURCE_DISCHARGE):
                out.add(var)
            elif _escapes_var(node, var):
                out.add(var)
        return frozenset(out)


def _check_resources(
    pf: PyFile, fc: FunctionCFG, aliases: Aliases
) -> List[Diagnostic]:
    analysis = _ResourceLeakAnalysis(fc, aliases)
    out: List[Diagnostic] = []
    for node, chain, target in analysis.attr_creations:
        if fc.cls is None or not _class_discharges(
            fc.cls, chain, RESOURCE_DISCHARGE
        ):
            out.append(pf.diag(
                node.stmt,
                "RPL503",
                f"{fc.qualname} stores a {target} handle on {chain} "
                f"but no method of the class ever closes it",
            ))
    for node, target in analysis.bare_creations:
        out.append(pf.diag(
            node.stmt,
            "RPL503",
            f"{fc.qualname} discards the {target} handle it creates; "
            f"nothing can ever close it",
        ))
    if analysis.creations:
        in_facts, _ = analysis.solve()
        leaked = in_facts[fc.cfg.exit] or frozenset()
        for var in sorted(leaked):
            node, target = analysis.creations[var]
            out.append(pf.diag(
                node.stmt,
                "RPL503",
                f"{fc.qualname} opens {target} as {var!r} but does not "
                f"close it on every path out of the function",
            ))
    return out


# -- RPL504: explicit now vs ambient clock -----------------------------------


def _check_clock(
    pf: PyFile, fc: FunctionCFG, aliases: Aliases
) -> List[Diagnostic]:
    if not (set(fc.param_names()) & CLOCK_PARAMS):
        return []
    out: List[Diagnostic] = []
    for node in fc.cfg.stmt_nodes():
        for sub in node.walk():
            if isinstance(sub, ast.Call):
                target = call_target(sub, aliases)
                if target in AMBIENT_CLOCKS:
                    out.append(pf.diag(
                        sub,
                        "RPL504",
                        f"{fc.qualname} takes an explicit clock "
                        f"parameter yet reads {target}(); thread the "
                        f"parameter instead",
                    ))
    return out


# -- pass entry point --------------------------------------------------------


def check_file(pf: PyFile) -> List[Diagnostic]:
    if pf.tree is None:
        return []
    aliases = Aliases.collect(pf.tree)
    fcs = function_cfgs(pf.tree)
    out: List[Diagnostic] = []
    in_runner = pf.rel.startswith(RUNNER_PREFIX)
    in_clock_scope = pf.rel.startswith(CLOCK_PREFIXES)
    for fc in fcs:
        if in_runner:
            out.extend(_check_leases(pf, fc))
            out.extend(_check_resources(pf, fc, aliases))
        if in_clock_scope:
            out.extend(_check_clock(pf, fc, aliases))
    if in_runner:
        out.extend(_check_journal_discipline(pf, fcs))
    return out


def run(files: List[PyFile]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for pf in files:
        if pf.parse_error:
            continue
        out.extend(check_file(pf))
    return out


EXPLANATIONS = {
    "RPL501": Explanation(
        code="RPL501",
        title="lease claim leaks on some path",
        rationale=(
            "A LeaseTable.claim grants exclusive custody of a "
            "fingerprint. If an exception (or an early return) skips "
            "the matching release/renew/evict, the fingerprint stays "
            "leased forever and the scheduler deadlocks on re-dispatch. "
            "The check walks every CFG path, including exception "
            "edges, and reports claims that any path leaves "
            "undischarged."
        ),
        example=(
            "lease = table.claim(fp, task_id, ex_id, 1, now)\n"
            "risky()              # raises -> release never runs\n"
            "table.release(fp)"
        ),
        fix=(
            "lease = table.claim(fp, task_id, ex_id, 1, now)\n"
            "try:\n"
            "    risky()\n"
            "finally:\n"
            "    table.release(fp)\n"
            "# or hand the table off (return / self.attr / call arg);\n"
            "# claims on self.<table> need a release somewhere in the "
            "class."
        ),
    ),
    "RPL502": Explanation(
        code="RPL502",
        title="journal append on a lease-blind path",
        rationale=(
            "In a class that owns both a journal and a lease table, a "
            "journal line asserts 'this outcome belongs to lease-held "
            "work'. A code path that reaches the append without ever "
            "touching the lease table can journal a stale or duplicate "
            "outcome (e.g. after the lease was re-claimed by another "
            "executor). Must-analysis: every path to the append has to "
            "interact with the table first."
        ),
        example=(
            "if fingerprint in self._completed:\n"
            "    self._journal.append(dup_line)   # lease never checked\n"
            "    self._leases.release(fingerprint)"
        ),
        fix=(
            "if fingerprint in self._completed:\n"
            "    self._leases.release(fingerprint, executor_id)\n"
            "    self._journal.append(dup_line)\n"
            "# touch (release/renew/lookup) the lease table before\n"
            "# journalling, or take the lease as a parameter."
        ),
    ),
    "RPL503": Explanation(
        code="RPL503",
        title="resource not closed on every path",
        rationale=(
            "Sockets, subprocesses and file handles opened by the "
            "runner outlive the campaign if an exception path skips "
            "their close: leaked workers keep scratch directories "
            "pinned and leaked sockets exhaust fds during chaos "
            "soaks. The check tracks each handle from creation to "
            "close/hand-off on every CFG path; handles stored on self "
            "must be closed by some method of the class."
        ),
        example=(
            "sock = socket.create_connection(addr)\n"
            "hello(sock)          # raises -> sock leaks\n"
            "sock.close()"
        ),
        fix=(
            "sock = socket.create_connection(addr)\n"
            "try:\n"
            "    hello(sock)\n"
            "finally:\n"
            "    sock.close()\n"
            "# or use `with`, or hand the socket off to an owner that "
            "closes it."
        ),
    ),
    "RPL504": Explanation(
        code="RPL504",
        title="ambient clock read beside an explicit now",
        rationale=(
            "Runner and service code thread monotonic `now` values "
            "explicitly so that replays and tests can drive time. A "
            "function that takes `now` (or `deadline`) but also calls "
            "time.monotonic()/time.time() mixes two clocks: behaviour "
            "diverges between live runs and replays, and the RPL103 "
            "allowlist no longer describes where time enters."
        ),
        example=(
            "def renew(self, executor_id, now):\n"
            "    lease.expires_at = time.monotonic() + self.ttl_s"
        ),
        fix=(
            "def renew(self, executor_id, now):\n"
            "    lease.expires_at = now + self.ttl_s\n"
            "# read the clock once at the edge (an RPL103-allowlisted\n"
            "# module) and pass it down."
        ),
    ),
}
