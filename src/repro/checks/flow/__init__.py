"""Flow-sensitive analysis engine for ``repro lint``.

This subpackage turns the shallow, statement-local AST passes of
``repro.checks`` into path-aware ones:

* :mod:`repro.checks.flow.cfg` — a statement-level AST→CFG builder
  covering branches, loops, ``try``/``except``/``finally``,
  ``with``-blocks and the async constructs.
* :mod:`repro.checks.flow.dataflow` — a small forward-dataflow
  framework (gen/kill over a set lattice, worklist to fixpoint, may- or
  must-meet).
* :mod:`repro.checks.flow.summaries` — per-function summaries (import
  aliases, blocking-call closure, escaping-raise sets) that make the
  passes intraprocedural within one module.
* :mod:`repro.checks.flow.concurrency` — the RPL5xx family: lease,
  journal, resource and clock discipline over ``repro.runner``.
* :mod:`repro.checks.flow.asyncsafety` — the RPL6xx family: blocking
  calls in ``async def``, stale jobstore state across ``await``, the
  pinned status-code contract, and handler exception escape, over
  ``repro.service``.

Everything here is intraprocedural with same-file summaries; the known
false-negative boundaries are documented in DESIGN.md ("Static
analysis").
"""

from repro.checks.flow.cfg import CFG, CFGNode, build_cfg, function_cfgs
from repro.checks.flow.dataflow import (
    FixpointDiverged,
    ForwardAnalysis,
    GenKillAnalysis,
)

__all__ = [
    "CFG",
    "CFGNode",
    "build_cfg",
    "function_cfgs",
    "FixpointDiverged",
    "ForwardAnalysis",
    "GenKillAnalysis",
]
