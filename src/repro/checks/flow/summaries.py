"""Per-function summaries for intraprocedural (same-file) analysis.

The flow passes are intraprocedural: they analyse one function's CFG at
a time.  To see one level past a call without whole-program analysis,
this module builds *same-file* summaries:

* import-alias resolution (``import time as t`` → ``t.sleep`` is
  ``time.sleep``; ``from subprocess import run`` → ``run`` is
  ``subprocess.run``),
* the transitive blocking-call closure (an ``async def`` calling a
  sync helper that calls ``time.sleep`` is still blocking),
* escaping-raise sets (which exception names can propagate out of a
  function, after subtracting lexically-enclosing handlers).

Cross-module calls are opaque — a helper imported from another file
whose body blocks or raises is *not* seen.  That boundary is
deliberate (documented in DESIGN.md): within this repository the
disciplines being checked are module-local by construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Call targets that block the calling thread (canonical dotted names).
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "socket.getaddrinfo",
    "os.fsync",
    "os.system",
    "os.wait",
    "os.waitpid",
    "select.select",
    "shutil.rmtree",
    "shutil.copytree",
    "open",
    "io.open",
    "os.open",
    "os.fdopen",
    "requests.get",
    "requests.post",
    "requests.request",
    "urllib.request.urlopen",
})

#: Modules whose aliases we track for call-target canonicalisation.
_MODULES = frozenset({
    "time", "subprocess", "socket", "os", "io", "select", "shutil",
    "requests", "urllib", "urllib.request", "datetime", "random",
    "asyncio", "tempfile",
})

#: Handler types that catch everything.
_BROAD = frozenset({"Exception", "BaseException", "<bare>"})

#: Marker for a bare ``raise`` (re-raise) or a dynamic exception value.
RERAISE = "<re-raise>"


class Aliases:
    """Local-name → canonical dotted-name maps for one module."""

    def __init__(self) -> None:
        self.modules: Dict[str, str] = {}
        self.names: Dict[str, str] = {}

    @classmethod
    def collect(cls, tree: ast.AST) -> "Aliases":
        self = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _MODULES:
                        local = alias.asname or alias.name.split(".")[0]
                        self.modules[local] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module in _MODULES and node.level == 0:
                    for alias in node.names:
                        local = alias.asname or alias.name
                        self.names[local] = f"{node.module}.{alias.name}"
        return self


def dotted_name(expr: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        parts.reverse()
        return ".".join(parts)
    return None


def call_target(call: ast.Call, aliases: Aliases) -> Optional[str]:
    """Canonical dotted target of a call, e.g. ``time.sleep``.

    Resolves ``import x as y`` and ``from x import f`` aliases; a name
    that is neither is returned as written (covers bare ``open`` and
    ``self.helper`` chains).
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    if rest and root in aliases.modules:
        return f"{aliases.modules[root]}.{rest}"
    if not rest and name in aliases.names:
        return aliases.names[name]
    return name


def blocking_target(call: ast.Call, aliases: Aliases) -> Optional[str]:
    """The canonical blocking primitive this call names, if any."""
    target = call_target(call, aliases)
    if target is not None and target in BLOCKING_CALLS:
        return target
    return None


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs.

    The nested ``def``/``class`` node itself is yielded (so a pass can
    note it exists) but its body is opaque — its statements execute at
    call time, not in the enclosing function's flow.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(child))


def handler_names(handler: ast.ExceptHandler) -> Set[str]:
    """The exception names one ``except`` clause catches."""
    if handler.type is None:
        return {"<bare>"}
    out: Set[str] = set()
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        name = dotted_name(t)
        if name is not None:
            out.add(name.split(".")[-1])
        else:
            out.add("<bare>")  # dynamic type: assume broad
    return out


def catches(catcher_sets: List[Set[str]], exc_name: str) -> bool:
    """Would any of the lexically-enclosing handlers catch this?"""
    for names in catcher_sets:
        if names & _BROAD:
            return True
        if exc_name in names:
            return True
    return False


@dataclass
class FunctionInfo:
    """Same-file summary of one function."""

    qualname: str
    cls_name: Optional[str]
    node: ast.AST
    is_async: bool
    #: Direct blocking primitives called: ``(call, primitive)``.
    blocking: List[Tuple[ast.Call, str]] = field(default_factory=list)
    #: Same-file calls: ``(call, callee_qualname, enclosing catchers)``.
    calls: List[Tuple[ast.Call, str, List[Set[str]]]] = (
        field(default_factory=list)
    )
    #: Exception names that can propagate out of this function.
    escapes: Set[str] = field(default_factory=set)
    #: ``primitive`` or ``helper -> primitive`` chain, once closed.
    blocking_chain: Optional[str] = None


class ModuleSummaries:
    """Function index + closures for one parsed module."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases = Aliases.collect(tree)
        self.functions: Dict[str, FunctionInfo] = {}
        self._module_funcs: Dict[str, str] = {}
        self._methods: Dict[Tuple[str, str], str] = {}
        self._index(tree)
        self._summarise()
        self._close()

    # -- indexing ------------------------------------------------------------

    def _index(self, tree: ast.AST) -> None:
        def visit(node: ast.AST, prefix: str, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qual = f"{prefix}{child.name}"
                    self.functions[qual] = FunctionInfo(
                        qualname=qual,
                        cls_name=cls,
                        node=child,
                        is_async=isinstance(child, ast.AsyncFunctionDef),
                    )
                    if cls is None and prefix == "":
                        self._module_funcs[child.name] = qual
                    elif cls is not None and prefix == f"{cls}.":
                        self._methods[(cls, child.name)] = qual
                    visit(child, f"{qual}.", cls)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{child.name}.", child.name)

        visit(tree, "", None)

    def resolve_call(
        self, call: ast.Call, cls_name: Optional[str]
    ) -> Optional[str]:
        """Same-file callee qualname for ``f(...)`` or ``self.f(...)``."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._module_funcs.get(func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and cls_name is not None
        ):
            return self._methods.get((cls_name, func.attr))
        return None

    # -- per-function summaries ----------------------------------------------

    def _summarise(self) -> None:
        for info in self.functions.values():
            self._summarise_one(info)

    def _summarise_one(self, info: FunctionInfo) -> None:
        raises: List[Tuple[ast.Raise, List[Set[str]]]] = []

        def scan(node: ast.AST, catchers: List[Set[str]]) -> None:
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                return
            if isinstance(node, ast.Call):
                prim = blocking_target(node, self.aliases)
                if prim is not None:
                    info.blocking.append((node, prim))
                callee = self.resolve_call(node, info.cls_name)
                if callee is not None:
                    info.calls.append((node, callee, list(catchers)))
            if isinstance(node, ast.Raise):
                raises.append((node, list(catchers)))
            if isinstance(node, ast.Try) or (
                hasattr(ast, "TryStar")
                and isinstance(node, ast.TryStar)
            ):
                merged: Set[str] = set()
                for h in node.handlers:
                    merged |= handler_names(h)
                # The try body sees this try's handlers; handler
                # bodies, else and finally do not.
                for stmt in node.body:
                    scan(stmt, catchers + [merged])
                for h in node.handlers:
                    for stmt in h.body:
                        scan(stmt, catchers)
                for stmt in node.orelse:
                    scan(stmt, catchers)
                for stmt in node.finalbody:
                    scan(stmt, catchers)
                return
            for child in ast.iter_child_nodes(node):
                scan(child, catchers)

        # Only the body: decorators and default-argument expressions
        # run at definition time, not inside the function.
        for stmt in info.node.body:
            scan(stmt, [])

        for raise_node, catchers in raises:
            name = self._raise_name(raise_node)
            if not catches(catchers, name):
                info.escapes.add(name)

    @staticmethod
    def _raise_name(node: ast.Raise) -> str:
        if node.exc is None:
            return RERAISE
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = dotted_name(exc)
        if name is None:
            return RERAISE
        return name.split(".")[-1]

    # -- closures ------------------------------------------------------------

    def _close(self) -> None:
        # Blocking chains: seed with direct primitives, then propagate
        # backwards along same-file calls to a (bounded) fixpoint.
        for info in self.functions.values():
            if info.blocking:
                info.blocking_chain = info.blocking[0][1]
        for _ in range(len(self.functions) + 1):
            changed = False
            for info in self.functions.values():
                if info.blocking_chain is not None:
                    continue
                for _call, callee, _catchers in info.calls:
                    chain = self.functions[callee].blocking_chain
                    if chain is not None and callee != info.qualname:
                        short = callee.split(".")[-1]
                        info.blocking_chain = f"{short} -> {chain}"
                        changed = True
                        break
            if not changed:
                break

        # Escaping raises: propagate callee escapes through call sites
        # not wrapped in a catching try.
        for _ in range(len(self.functions) + 1):
            changed = False
            for info in self.functions.values():
                for _call, callee, catchers in info.calls:
                    if callee == info.qualname:
                        continue
                    for exc in self.functions[callee].escapes:
                        if not catches(catchers, exc) and (
                            exc not in info.escapes
                        ):
                            info.escapes.add(exc)
                            changed = True
            if not changed:
                break

    def blocking_chain(self, qualname: str) -> Optional[str]:
        info = self.functions.get(qualname)
        return info.blocking_chain if info else None
