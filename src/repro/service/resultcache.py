"""Content-addressed, verify-before-serve simulation result store.

One entry per task fingerprint (the sha256 over ``(experiment, kwargs,
seed)`` that :func:`repro.core.experiments.task_fingerprint` computes),
stored as an integrity-enveloped checkpoint file
(:mod:`repro.resilience.checkpoint`): ``MAGIC`` + pickled envelope
carrying the payload sha256 + the payload.  The payload is the winning
*journal entry* of the job's campaign run, CRC line and all — so one
cached artifact carries every integrity layer ``repro verify`` knows:

1. the checkpoint **sha256 envelope** over the stored bytes,
2. the **journal CRC** of the embedded entry (the exact line the
   scheduler fsynced when the simulation completed),
3. the **oracle scoreboard** recorded by that run (an entry with
   violations is never serve-clean: the result came off an untrusted
   path and must be re-simulated, not cached).

:meth:`ResultCache.load_verified` runs all three checks on every read —
a cache *hit* is only a hit if the artifact still proves itself.  Any
failure quarantines the file (``<name>.quarantined``) and reports a
miss, which makes the caller re-enqueue the simulation: the service
never serves a payload it cannot verify, it re-runs it.

Because the stored entry is canonical and the serve path re-encodes it
with sorted keys, two requests for the same fingerprint receive
byte-identical payloads — a million clients asking for the same
configuration pay for exactly one simulation and can diff their answers
bit-for-bit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.oracles.integrity import verify_entry_crc
from repro.resilience.checkpoint import (
    load_checkpoint,
    quarantine_file,
    save_checkpoint,
)
from repro.resilience.errors import CheckpointError, StateIntegrityError

#: Checkpoint ``kind`` tag for result-store entries.
RESULT_KIND = "service-result"

#: Filename suffix for live entries (quarantined ones gain
#: ``.quarantined`` on top, which batch ``repro verify`` skips).
RESULT_SUFFIX = ".result"

PathLike = Union[str, Path]


class ResultCache:
    """Directory of fingerprint-addressed, self-verifying result files."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "quarantined": 0,
        }

    def path(self, fingerprint: str) -> Path:
        """Cache file for *fingerprint* (exists or not)."""
        return self.root / f"{fingerprint}{RESULT_SUFFIX}"

    # -- write ---------------------------------------------------------------

    def store(self, fingerprint: str, entry: Dict[str, Any]) -> Path:
        """Persist the winning journal *entry* under *fingerprint*.

        Refuses entries that could never verify: a non-``ok`` status, a
        fingerprint mismatch, a failed line CRC, or recorded oracle
        violations.  Storing garbage would only move the failure to the
        serve path; rejecting it here keeps the cache serve-clean by
        construction.

        Raises:
            ValueError: the entry is not cacheable (reason in message).
        """
        reason = entry_unservable_reason(fingerprint, entry)
        if reason is not None:
            raise ValueError(f"refusing to cache {fingerprint}: {reason}")
        path = self.path(fingerprint)
        save_checkpoint(
            RESULT_KIND, {"fingerprint": fingerprint, "entry": entry}, path
        )
        self.stats["stores"] += 1
        return path

    # -- read ----------------------------------------------------------------

    def load_verified(
        self, fingerprint: str
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """``(entry, "hit")`` after full verification, or ``(None, why)``.

        ``why`` is ``"miss"`` for an absent entry, or a
        ``"quarantined: ..."`` reason when the artifact existed but
        failed any of the three checks — in which case the file has
        been moved aside and the fingerprint must be re-simulated.
        """
        path = self.path(fingerprint)
        if not path.exists():
            self.stats["misses"] += 1
            return None, "miss"
        try:
            state = load_checkpoint(path, RESULT_KIND)
        except (CheckpointError, StateIntegrityError) as exc:
            return None, self._quarantine(path, f"envelope: {exc}")
        entry = state.get("entry")
        if state.get("fingerprint") != fingerprint or not isinstance(
            entry, dict
        ):
            return None, self._quarantine(
                path,
                "content-address mismatch: stored entry does not belong "
                "to this fingerprint",
            )
        reason = entry_unservable_reason(fingerprint, entry)
        if reason is not None:
            return None, self._quarantine(path, reason)
        self.stats["hits"] += 1
        return entry, "hit"

    def _quarantine(self, path: Path, why: str) -> str:
        try:
            quarantine_file(path)
        except OSError:
            # Racing quarantines (two readers of one corrupt entry):
            # the first rename wins, the loser just reports the reason.
            pass
        self.stats["quarantined"] += 1
        return f"quarantined: {why}"

    # -- bookkeeping ---------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Counter view for ``/stats``."""
        return dict(self.stats)


def entry_unservable_reason(
    fingerprint: str, entry: Dict[str, Any]
) -> Optional[str]:
    """Why this journal entry may not be served, or None if clean.

    The shared serve/cache gate: status must be ``ok``, the entry's own
    fingerprint must match the requested one, its journal-line CRC must
    verify, and its oracle scoreboard must be violation-free.
    """
    if entry.get("status") != "ok":
        return f"entry status is {entry.get('status')!r}, not ok"
    if entry.get("fingerprint") != fingerprint:
        return "entry fingerprint does not match the requested one"
    if not verify_entry_crc(entry):
        return "journal-line CRC check failed"
    violations = (entry.get("oracles") or {}).get("violations") or []
    if violations:
        return (
            f"oracle scoreboard recorded {len(violations)} violation(s); "
            f"result must be re-simulated, not served"
        )
    return None
