"""Simulated transport for the service protection pipeline.

The HTTP server in :mod:`repro.service.server` owns sockets, threads,
and the wall clock — none of which may exist inside a deterministic
simulation.  :class:`SimGateway` re-composes the *real* protection
state machines (:class:`~repro.service.protection.RateLimiter`,
:class:`~repro.service.protection.AdmissionPolicy`,
:class:`~repro.service.protection.CircuitBreaker`) and the real
in-memory :class:`~repro.service.jobstore.JobStore` behind a
callable interface driven by the DST harness on virtual time, recording
every breaker transition and response so the protocol predicates in
:mod:`repro.oracles.protocol` can audit the whole interaction
afterwards.

The request pipeline mirrors the server's ordering exactly —
rate-limit, then validate, then single-flight, then admit — because
the *ordering* is part of what the simulation is checking (e.g. a
flood must burn 429s before it can fill the queue).  As in the real
server, the breaker gates only the backend boundary
(:meth:`SimGateway.backend_turn`): a submission never consumes the
half-open probe slot, which belongs to the job that will actually
touch the backend.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.service.jobstore import DONE, FAILED, JobStore, QUEUED, RUNNING
from repro.service.protection import (
    AdmissionPolicy,
    CircuitBreaker,
    RateLimiter,
)

#: Experiment ids the simulated gateway accepts.
KNOWN_EXPERIMENTS = ("dst-unit-a", "dst-unit-b", "dst-unit-c")


class SimGateway:
    """The service's decision pipeline with transport stripped away."""

    def __init__(
        self,
        rate: float = 5.0,
        burst: float = 4.0,
        queue_depth: int = 8,
        watermark: int = 6,
        failure_threshold: int = 3,
        reset_after_s: float = 2.0,
    ) -> None:
        self.limiter = RateLimiter(rate=rate, burst=burst, max_clients=64)
        self.admission = AdmissionPolicy(
            depth=queue_depth, watermark=watermark
        )
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            reset_after_s=reset_after_s,
        )
        self.store = JobStore(journal_path=None)
        self.queue: List[str] = []
        #: ``(event, state_before, state_after)`` breaker audit trail.
        self.transitions: List[Tuple[str, str, str]] = []
        #: Every response the gateway produced, in order.
        self.responses: List[Dict[str, Any]] = []

    # -- breaker bookkeeping -------------------------------------------------

    def _breaker_allow(self, now: float) -> bool:
        before = self.breaker.state
        allowed = self.breaker.allow(now)
        self.transitions.append(("allow", before, self.breaker.state))
        return allowed

    def _breaker_success(self) -> None:
        before = self.breaker.state
        self.breaker.record_success()
        self.transitions.append(("success", before, self.breaker.state))

    def _breaker_failure(self, now: float) -> None:
        before = self.breaker.state
        self.breaker.record_failure(now)
        self.transitions.append(("failure", before, self.breaker.state))

    # -- the request path ----------------------------------------------------

    def _respond(self, status: int, **extra: Any) -> Dict[str, Any]:
        response = dict(extra, status=status)
        self.responses.append(response)
        return response

    def submit(
        self,
        client: str,
        experiment_id: str,
        fingerprint: str,
        now: float,
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One POST /jobs on virtual time *now*."""
        allowed, wait = self.limiter.check(client, now)
        if not allowed:
            return self._respond(429, retry_after=wait)
        if experiment_id not in KNOWN_EXPERIMENTS:
            return self._respond(400, error="unknown experiment")
        existing = self.store.get(fingerprint)
        if existing is not None and existing.state in (QUEUED, RUNNING):
            self.store.note_coalesced(existing)
            return self._respond(202, coalesced=True, fingerprint=fingerprint)
        if existing is not None and existing.state == DONE:
            return self._respond(200, fingerprint=fingerprint, cached=True)
        if not self.admission.admit(len(self.queue)):
            return self._respond(503, reason="queue above watermark")
        job, created = self.store.get_or_create(
            fingerprint=fingerprint,
            experiment_id=experiment_id,
            kwargs=dict(kwargs or {}),
            seed=None,
            registry_spec="repro.dst.workload:DST_REGISTRY",
        )
        if created or job.state == QUEUED:
            self.queue.append(fingerprint)
        return self._respond(202, fingerprint=fingerprint)

    def poll_job(self, fingerprint: str, now: float) -> Dict[str, Any]:
        """One GET /jobs/<fp> on virtual time *now*."""
        del now
        job = self.store.get(fingerprint)
        if job is None:
            return self._respond(404)
        if job.state == DONE:
            return self._respond(200, fingerprint=fingerprint)
        if job.state == FAILED:
            return self._respond(408, fingerprint=fingerprint)
        return self._respond(202, state=job.state)

    # -- the backend side ----------------------------------------------------

    def backend_turn(self, now: float, fail: bool = False) -> Optional[str]:
        """Run (or fail) the oldest queued job; returns its fingerprint.

        *fail* simulates a backend loss (the ``svc-backend-fail``
        fault): the job is requeued and the breaker records the loss.
        Success records into the breaker and marks the job done.
        """
        if not self.queue:
            return None
        fingerprint = self.queue[0]
        if not self._breaker_allow(now):
            return None
        self.queue.pop(0)
        job = self.store.get(fingerprint)
        if job is None or job.state != QUEUED:
            # Discarded or already settled; nothing to run.
            return fingerprint
        self.store.mark_running(job)
        if fail:
            self._breaker_failure(now)
            self.store.mark_requeued(job, "backend lost (simulated)")
            self.queue.append(fingerprint)
            return fingerprint
        self._breaker_success()
        self.store.mark_done(job)
        return fingerprint

    # -- audit ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "queue_depth": len(self.queue),
            "breaker": self.breaker.snapshot(),
            "jobs": self.store.counts(),
            "responses": len(self.responses),
        }


__all__ = ["KNOWN_EXPERIMENTS", "SimGateway"]
