"""Job records and single-flight admission for the simulation service.

A **job** is one fingerprint's worth of work: the service keys jobs on
the sha256 task fingerprint over ``(experiment, kwargs, seed)``, so N
concurrent submissions of the same triple **coalesce** onto one record
and exactly one scheduler submission (single-flight).  The job id *is*
the fingerprint — the API is content-addressed end to end.

Lifecycle (see DESIGN.md for the full backpressure state machine)::

    queued --dispatch--> running --ok+verified--> done
      ^                     |                      |
      |   retryable backend loss / verify failure  |
      +--------------------(requeue, bounded)------+
                            |
                            +--budget exhausted--> failed

``done`` is soft: the result of record lives in the
:class:`~repro.service.resultcache.ResultCache`, and every serve
re-verifies it.  A quarantined artifact flips the job back to
``queued`` (the re-run path), so "done" always means "a verified
artifact exists right now".

Every transition is journaled to an append-only, per-line-CRC'd JSONL
file (the same :class:`repro.runner.journal.Journal` machinery the
campaign scheduler trusts), so a crashed service leaves an auditable,
``repro verify``-able trail.  The store itself never reads a clock;
ordering is by a monotone sequence number and timestamps stay out of
the payloads the cache serves.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runner.journal import Journal

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)


@dataclass
class Job:
    """One fingerprint's worth of simulation work."""

    fingerprint: str
    experiment_id: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    registry_spec: str = "repro.core.experiments:REGISTRY"
    state: str = QUEUED
    #: Service-level dispatch attempts (each may wrap scheduler retries).
    attempts: int = 0
    #: Times a submission coalesced onto this in-flight job.
    coalesced: int = 0
    #: Underlying scheduler submissions actually performed — the
    #: single-flight acceptance metric.
    simulations: int = 0
    #: Times this job was re-queued after its artifact was quarantined.
    requeues: int = 0
    error: Optional[str] = None
    error_type: Optional[str] = None
    submitted_seq: int = 0
    updated_seq: int = 0

    def public_view(self) -> Dict[str, Any]:
        """JSON shape for polling responses (no result payload)."""
        view = {
            "job_id": self.fingerprint,
            "fingerprint": self.fingerprint,
            "experiment": self.experiment_id,
            "kwargs": dict(self.kwargs),
            "seed": self.seed,
            "status": self.state,
            "attempts": self.attempts,
        }
        if self.error is not None:
            view["error"] = self.error
            view["error_type"] = self.error_type
        return view


class JobStore:
    """Fingerprint-keyed job table with single-flight semantics.

    Thread-safe: handlers and dispatcher coroutines run on the event
    loop, but job runs return from executor threads, so all mutation
    goes through one lock.  The journal is only ever appended under
    that lock (single writer, as :class:`Journal` requires).
    """

    def __init__(self, journal_path: Optional[str] = None) -> None:
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._journal = Journal(journal_path) if journal_path else None

    # -- single-flight admission ---------------------------------------------

    def get(self, fingerprint: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(fingerprint)

    def get_or_create(
        self,
        fingerprint: str,
        experiment_id: str,
        kwargs: Dict[str, Any],
        seed: Optional[int],
        registry_spec: str,
    ) -> tuple[Job, bool]:
        """``(job, created)`` — the single-flight gate.

        An existing queued/running job absorbs the submission
        (``coalesced`` incremented, no new work).  A ``done`` or
        ``failed`` job is returned as-is; the caller decides whether a
        failed job earns a fresh attempt.
        """
        with self._lock:
            job = self._jobs.get(fingerprint)
            if job is not None:
                if job.state in (QUEUED, RUNNING):
                    job.coalesced += 1
                return job, False
            job = Job(
                fingerprint=fingerprint,
                experiment_id=experiment_id,
                kwargs=dict(kwargs),
                seed=seed,
                registry_spec=registry_spec,
                submitted_seq=self._next_seq(),
            )
            self._jobs[fingerprint] = job
            self._journal_event(job, "submitted")
            return job, True

    def note_coalesced(self, job: Job) -> None:
        """Count one submission absorbed by an in-flight job."""
        with self._lock:
            job.coalesced += 1

    def discard(self, job: Job) -> None:
        """Drop a just-created job that was never admitted (shed).

        Only a still-queued record is removed: a shed submission must
        leave no ghost entry for later submissions to coalesce onto
        (they would wait forever on a queue token that does not exist).
        """
        with self._lock:
            if (
                self._jobs.get(job.fingerprint) is job
                and job.state == QUEUED
            ):
                self._journal_event(job, "shed")
                del self._jobs[job.fingerprint]

    # -- transitions ---------------------------------------------------------

    def mark_running(self, job: Job) -> None:
        with self._lock:
            job.state = RUNNING
            job.attempts += 1
            job.updated_seq = self._next_seq()
            self._journal_event(job, "started")

    def mark_simulated(self, job: Job) -> None:
        """Count one real scheduler submission (not a coalesced hit)."""
        with self._lock:
            job.simulations += 1

    def mark_done(self, job: Job) -> None:
        with self._lock:
            job.state = DONE
            job.error = job.error_type = None
            job.updated_seq = self._next_seq()
            self._journal_event(job, "completed")

    def mark_failed(
        self, job: Job, error: str, error_type: str
    ) -> None:
        with self._lock:
            job.state = FAILED
            job.error = error
            job.error_type = error_type
            job.updated_seq = self._next_seq()
            self._journal_event(job, "failed", error=error)

    def mark_requeued(self, job: Job, why: str) -> None:
        """Back to ``queued`` — a retryable loss or a quarantined artifact."""
        with self._lock:
            job.state = QUEUED
            job.requeues += 1
            job.updated_seq = self._next_seq()
            self._journal_event(job, "requeued", error=why)

    def reset_for_retry(self, job: Job) -> None:
        """Give a ``failed`` job a fresh service-level budget."""
        with self._lock:
            job.state = QUEUED
            job.attempts = 0
            job.error = job.error_type = None
            job.updated_seq = self._next_seq()
            self._journal_event(job, "resubmitted")

    # -- bookkeeping ---------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                out[job.state] += 1
            out["total"] = len(self._jobs)
            out["coalesced"] = sum(
                j.coalesced for j in self._jobs.values()
            )
            out["simulations"] = sum(
                j.simulations for j in self._jobs.values()
            )
            out["requeues"] = sum(j.requeues for j in self._jobs.values())
            return out

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def close(self) -> None:
        with self._lock:
            if self._journal is not None:
                self._journal.close()

    # -- journal -------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _journal_event(
        self, job: Job, event: str, error: Optional[str] = None
    ) -> None:
        """One CRC'd audit line per transition (lock already held)."""
        if self._journal is None:
            return
        line = {
            "v": 1,
            "event": event,
            "fingerprint": job.fingerprint,
            "experiment_id": job.experiment_id,
            "kwargs": dict(job.kwargs),
            "seed": job.seed,
            "state": job.state,
            "attempt": job.attempts,
            "seq": self._seq,
        }
        if error:
            line["error"] = error
        self._journal.append(line)
