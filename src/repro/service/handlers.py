"""Route handlers: the service's four endpoints.

Handlers are synchronous and fast — they parse, consult the job store /
result cache / protection state, and return a :class:`Response`.  All
slow work (the simulations themselves) happens in the dispatcher
(``service/server.py``); a handler never blocks the event loop.

Status-code contract (the chaos acceptance test pins this):

* ``200`` — served: a job view, a verified result, health, or stats.
* ``400`` — the request itself is malformed (bad JSON, unknown
  experiment, non-dict kwargs).
* ``404`` — unknown path or unknown job id.
* ``429`` — the client is over its rate budget (``Retry-After`` set).
* ``503`` — load shed: admission queue over its watermark, circuit
  breaker open, or an internal error absorbed by the guard.  Never a
  ``500`` — under chaos every response is one of the codes above.

The cache-hit path deliberately runs **before** every shed check: a
fingerprint with a verified artifact is served even while the breaker
is open and the queue is full, because serving it costs no backend
work.  That is the degraded-mode guarantee: cached results stay
available bit-identically through a backend partition.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.experiments import task_fingerprint
from repro.service.jobstore import DONE, FAILED
from repro.service.middleware import Request, Response, shed


def _bump(stats: Dict[str, int], key: str) -> None:
    stats[key] = stats.get(key, 0) + 1


def _result_payload(entry: Dict[str, Any]) -> Dict[str, Any]:
    """The served form of a verified cache entry.

    Built exclusively from the immutable stored entry — never from live
    job state — so every serve of one fingerprint yields byte-identical
    JSON.
    """
    return {
        "job_id": entry.get("fingerprint"),
        "fingerprint": entry.get("fingerprint"),
        "status": "done",
        "experiment": entry.get("experiment_id"),
        "kwargs": entry.get("kwargs") or {},
        "seed": entry.get("seed"),
        "attempt": entry.get("attempt", 0),
        "result": entry.get("result") or {},
        "oracles": entry.get("oracles") or {},
        "cached": True,
    }


def _parse_submission(app: Any, request: Request) -> Dict[str, Any]:
    """Validate a POST /jobs body; raises ValueError with the 400 text."""
    body = request.json()
    if not isinstance(body, dict):
        raise ValueError("request body must be a JSON object")
    experiment_id = body.get("experiment")
    if not isinstance(experiment_id, str) or not experiment_id:
        raise ValueError("'experiment' must be a non-empty string")
    known = app.registry.list()
    if experiment_id not in known:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    kwargs = body.get("kwargs") or {}
    if not isinstance(kwargs, dict) or any(
        not isinstance(k, str) for k in kwargs
    ):
        raise ValueError("'kwargs' must be an object with string keys")
    seed = body.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise ValueError("'seed' must be an integer or null")
    return {"experiment": experiment_id, "kwargs": kwargs, "seed": seed}


def handle_submit(app: Any, request: Request, now: float) -> Response:
    """POST /jobs — admit (or coalesce, or serve-from-cache) one job."""
    try:
        sub = _parse_submission(app, request)
    except ValueError as exc:
        _bump(app.stats, "bad_requests")
        return Response(400, {"error": str(exc)})
    fingerprint = task_fingerprint(
        sub["experiment"], sub["kwargs"], sub["seed"]
    )

    # Cache first: a verified artifact is served unconditionally — no
    # rate-limited backend, open breaker, or full queue can block a
    # result that costs no new work.
    entry, why = app.cache.load_verified(fingerprint)
    if entry is not None:
        _bump(app.stats, "cache_hits")
        app.note_done_from_cache(fingerprint, entry)
        return Response(200, _result_payload(entry))
    if why.startswith("quarantined"):
        _bump(app.stats, "verify_failures")

    existing = app.jobs.get(fingerprint)
    if existing is not None and existing.state not in (DONE, FAILED):
        # Single-flight: this submission coalesces onto in-flight work
        # (and is never shed — it costs no new backend work).
        app.jobs.note_coalesced(existing)
        _bump(app.stats, "coalesced")
        return Response(200, existing.public_view())

    # New work (a fresh job, a failed job resubmitted, or a done job
    # whose artifact was just quarantined) must pass the shed gates
    # BEFORE any record is created: a shed submission must leave no
    # ghost job for later submissions to coalesce onto.
    response = _admission_shed(app, now)
    if response is not None:
        return response
    job, created = app.jobs.get_or_create(
        fingerprint,
        sub["experiment"],
        sub["kwargs"],
        sub["seed"],
        app.registry_spec,
    )
    if not created:
        if job.state == FAILED:
            app.jobs.reset_for_retry(job)
        elif job.state == DONE:  # artifact failed verification above
            app.jobs.mark_requeued(job, why)
    if not app.enqueue(job):
        _bump(app.stats, "shed_queue")
        if created:
            app.jobs.discard(job)
        else:
            app.jobs.mark_failed(job, "admission queue full", "Shed")
        return shed(
            503, "admission queue is full", app.config.retry_after_s
        )
    _bump(app.stats, "admitted")
    return Response(200, job.public_view())


def _admission_shed(app: Any, now: float) -> Optional[Response]:
    """503 when new backend work may not be admitted, else None."""
    retry_after_s = app.breaker.retry_after(now)
    if retry_after_s > 0:
        _bump(app.stats, "shed_breaker")
        return shed(
            503,
            "circuit breaker is open: the executor backend is losing "
            "executors; cached fingerprints are still served",
            retry_after_s,
        )
    if not app.policy.admit(app.queue_depth()):
        _bump(app.stats, "shed_queue")
        return shed(
            503,
            "admission queue is over its load-shedding watermark",
            app.config.retry_after_s,
        )
    return None


def handle_job_get(app: Any, job_id: str, now: float) -> Response:
    """GET /jobs/{id} — poll one job; id is the task fingerprint."""
    entry, why = app.cache.load_verified(job_id)
    if entry is not None:
        _bump(app.stats, "cache_hits")
        # A warm cache outlives job records (service restart): the
        # artifact alone is authoritative.
        app.note_done_from_cache(job_id, entry)
        return Response(200, _result_payload(entry))
    job = app.jobs.get(job_id)
    if job is None:
        return Response(404, {"error": f"unknown job {job_id!r}"})
    if job.state == DONE:
        # Done, but the artifact just failed verification (the cache
        # quarantined it above) or vanished: re-run rather than serve.
        _bump(app.stats, "verify_failures")
        app.jobs.mark_requeued(job, why)
        if not app.enqueue(job):
            # The job must not linger queued with no queue token (it
            # would never run): finalize, so a later POST retries it.
            _bump(app.stats, "shed_queue")
            app.jobs.mark_failed(
                job,
                "artifact quarantined and the re-run queue is full",
                "Shed",
            )
            return shed(
                503,
                "artifact quarantined and the re-run queue is full; "
                "retry shortly",
                app.config.retry_after_s,
            )
        view = job.public_view()
        view["requeued"] = True
        return Response(200, view)
    return Response(200, job.public_view())


def handle_healthz(app: Any, now: float) -> Response:
    """GET /healthz — liveness plus the protection state at a glance."""
    return Response(200, {
        "ok": True,
        "breaker": app.breaker.snapshot(),
        "queue_depth": app.queue_depth(),
        "jobs": app.jobs.counts(),
    })


def handle_stats(app: Any, now: float) -> Response:
    """GET /stats — every counter the service keeps, JSON-stable."""
    return Response(200, app.stats_snapshot(now))


def route(app: Any, request: Request, now: float) -> Response:
    """Dispatch one parsed request to its handler (404 otherwise)."""
    method, path = request.method, request.path.rstrip("/") or "/"
    if method == "POST" and path == "/jobs":
        return handle_submit(app, request, now)
    if method == "GET" and path.startswith("/jobs/"):
        job_id = path[len("/jobs/"):]
        if job_id and "/" not in job_id:
            return handle_job_get(app, job_id, now)
    if method == "GET" and path == "/healthz":
        return handle_healthz(app, now)
    if method == "GET" and path == "/stats":
        return handle_stats(app, now)
    return Response(404, {"error": f"no route for {method} {request.path}"})
