"""Fault-tolerant simulation service (``repro serve``).

An asyncio, stdlib-only HTTP job API over the campaign scheduler:
content-addressed single-flight submission, per-client rate limiting,
bounded admission with load shedding, a circuit breaker around the
executor backend, and a verify-before-serve result store — every
artifact re-proves its checkpoint envelope, journal CRC, and oracle
scoreboard on every read, and quarantined results are re-simulated
rather than served.

Layering: ``service`` sits above ``runner`` (it schedules campaigns)
and below ``cli`` (which boots it); nothing else may import it
(RPL201 enforces this).
"""

from repro.service.jobstore import Job, JobStore
from repro.service.middleware import Request, Response
from repro.service.protection import (
    AdmissionPolicy,
    CircuitBreaker,
    RateLimiter,
    TokenBucket,
)
from repro.service.resultcache import ResultCache, entry_unservable_reason
from repro.service.server import (
    ReproService,
    ServiceConfig,
    ServiceThread,
    run_service,
)

__all__ = [
    "AdmissionPolicy",
    "CircuitBreaker",
    "Job",
    "JobStore",
    "RateLimiter",
    "ReproService",
    "Request",
    "Response",
    "ResultCache",
    "ServiceConfig",
    "ServiceThread",
    "TokenBucket",
    "entry_unservable_reason",
    "run_service",
]
