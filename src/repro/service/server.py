"""The asyncio HTTP server and job dispatcher (``repro serve``).

This is the only service module that reads a clock (``time.monotonic``;
it is on the RPL103 determinism allowlist) and the only one that speaks
sockets.  Everything else — rate limiting, admission, breaking, the job
table, the verify-before-serve cache — is clock-explicit and tested
without a single socket.

Shape of the service::

    accept loop ──HTTP/1.1──> ProtectionPipeline ──> handlers
                                                        │ enqueue
                                       bounded asyncio.Queue (capacity
                                       = AdmissionPolicy.depth)
                                                        │
    dispatcher coroutines (config.parallel_jobs of them) ──┤
        breaker gate ──> thread pool ──> run_campaign() ──> scan the
        run's CRC'd journal ──> verify ──> ResultCache.store

Stdlib only (``asyncio.start_server`` plus a ~40-line HTTP/1.1 reader);
the framework is the absence of one.  Connections are one-shot
(``Connection: close``) — clients poll, they do not stream.

Chaos hooks (:data:`repro.resilience.faults.SERVICE_FAULT_MODES`):

* ``slow-client`` — the connection is treated as a dribbler: ``408``
  and close, same as a real client that trickles its headers past
  ``header_timeout_s``.
* ``request-flood`` — handled in the middleware (token-cost
  amplification).
* ``backend-partition`` — the dispatcher records a synthetic executor
  loss instead of submitting, which is what drives the circuit breaker
  open in the chaos suite.
* ``corrupt-cached-result`` — bits are flipped in the just-stored
  artifact; the *next* serve quarantines it and re-runs the simulation
  (the verify-before-serve path, exercised end to end).
"""

from __future__ import annotations

import asyncio
import importlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.resilience.faults import FaultInjector
from repro.runner.journal import completed_fingerprints, scan_journal
from repro.runner.scheduler import run_campaign
from repro.runner.supervisor import CampaignConfig, RetryPolicy
from repro.runner.tasks import DEFAULT_REGISTRY_SPEC, CampaignTask
from repro.service import handlers
from repro.service.jobstore import QUEUED, RUNNING, Job, JobStore
from repro.service.middleware import ProtectionPipeline, Request, Response
from repro.service.protection import (
    AdmissionPolicy,
    CircuitBreaker,
    RateLimiter,
)
from repro.service.resultcache import ResultCache, entry_unservable_reason

#: Largest request body the service will read (a job submission is a
#: few hundred bytes; anything near this is abuse, not a job).
MAX_BODY_BYTES = 1 << 20

#: Largest request head (request line + headers) we will buffer.
MAX_HEAD_BYTES = 1 << 14


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port (tests); CLI default is 8642
    data_dir: str = "service-data"
    registry_spec: str = DEFAULT_REGISTRY_SPEC
    backend: str = "inproc"
    #: Worker concurrency inside each job's campaign run.
    workers: int = 1
    #: Dispatcher coroutines = jobs simulated concurrently.
    parallel_jobs: int = 2
    #: Wall-clock budget for one job run (service-level timeout).
    job_timeout_s: float = 60.0
    #: Service-level dispatch attempts per job (requeues after backend
    #: losses); each attempt may wrap scheduler-level retries too.
    max_job_attempts: int = 3
    #: Scheduler-level retry budget inside one attempt.
    scheduler_retries: int = 1
    rate_per_s: float = 20.0
    burst: float = 40.0
    max_clients: int = 1024
    queue_depth: int = 64
    shed_watermark: int = 48
    breaker_threshold: int = 3
    breaker_reset_s: float = 2.0
    #: Retry-After hint for queue sheds (breaker sheds compute theirs).
    retry_after_s: float = 1.0
    header_timeout_s: float = 5.0
    body_timeout_s: float = 5.0
    oracle_mode: str = "sample"
    injector: Optional[FaultInjector] = None
    retry_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=0, backoff_base_s=0.05)
    )

    def __post_init__(self) -> None:
        # Fail on a bad configuration at config time (the CLI maps
        # ValueError to exit 2), not after the listener is up.
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_reset_s <= 0:
            raise ValueError("breaker_reset_s must be positive")
        if self.rate_per_s <= 0 or self.burst < 1:
            raise ValueError("rate_per_s must be > 0 and burst >= 1")
        if not 1 <= self.shed_watermark <= self.queue_depth:
            raise ValueError("shed_watermark must be in [1, queue_depth]")
        if self.parallel_jobs < 1 or self.workers < 1:
            raise ValueError("parallel_jobs and workers must be >= 1")
        if self.job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")
        if self.max_job_attempts < 1:
            raise ValueError("max_job_attempts must be >= 1")
        from repro.runner.backends import parse_backend_spec

        parse_backend_spec(self.backend)

    @property
    def cache_dir(self) -> Path:
        return Path(self.data_dir) / "results"

    @property
    def spool_dir(self) -> Path:
        return Path(self.data_dir) / "spool"

    @property
    def journal_path(self) -> Path:
        return Path(self.data_dir) / "service-journal.jsonl"


def _resolve_registry(spec: str) -> Any:
    """Import ``module.path:ATTRIBUTE`` (same convention as workers)."""
    module_path, _, attr = spec.partition(":")
    if not module_path or not attr:
        raise ValueError(f"registry spec must be 'module:ATTR', got {spec!r}")
    return getattr(importlib.import_module(module_path), attr)


class ReproService:
    """The running service: HTTP front end + job dispatcher back end."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.registry = _resolve_registry(config.registry_spec)
        self.registry_spec = config.registry_spec
        config.spool_dir.mkdir(parents=True, exist_ok=True)
        self.jobs = JobStore(journal_path=str(config.journal_path))
        self.cache = ResultCache(config.cache_dir)
        self.limiter = RateLimiter(
            config.rate_per_s, config.burst, config.max_clients
        )
        self.policy = AdmissionPolicy(
            depth=config.queue_depth, watermark=config.shed_watermark
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            reset_after_s=config.breaker_reset_s,
        )
        self.stats: Dict[str, int] = {}
        self.pipeline = ProtectionPipeline(
            self.limiter, self.stats, injector=config.injector,
            flood_cost_factor=1.0,
        )
        #: Aggregated backend tallies across every campaign this
        #: service ran — the numbers ``repro sweep --json`` reports per
        #: campaign, summed for ``/stats``.
        self.backend_totals: Dict[str, int] = {
            "campaigns": 0,
            "executors_lost": 0,
            "leases_reclaimed": 0,
            "work_stolen": 0,
            "duplicates_discarded": 0,
            "retries_used": 0,
        }
        self._queue: "asyncio.Queue[str]" = asyncio.Queue(
            maxsize=config.queue_depth
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, config.parallel_jobs),
            thread_name_prefix="repro-job",
        )
        self._dispatchers: list[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: int = 0

    # The service's single clock.  Everything below threads this value
    # through the clock-explicit protection primitives.
    def now(self) -> float:
        return time.monotonic()

    # -- duck-typed surface the handlers use ---------------------------------

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def enqueue(self, job: Job) -> bool:
        """Admit *job* to the bounded queue; False when full (shed)."""
        try:
            self._queue.put_nowait(job.fingerprint)
        except asyncio.QueueFull:
            return False
        return True

    def note_done_from_cache(
        self, fingerprint: str, entry: Dict[str, Any]
    ) -> None:
        """Reconcile the job table with a verified artifact.

        A warm cache outlives job records (service restart), so a hit
        for an unknown fingerprint materializes a ``done`` job; a hit
        for a queued/running job is left alone — the dispatcher will
        see the artifact and finish the job without re-running it.
        """
        job = self.jobs.get(fingerprint)
        if job is None:
            job, created = self.jobs.get_or_create(
                fingerprint,
                str(entry.get("experiment_id")),
                entry.get("kwargs") or {},
                entry.get("seed"),
                self.registry_spec,
            )
            if created:
                self.jobs.mark_done(job)

    def stats_snapshot(self, now: float) -> Dict[str, Any]:
        depth = self.queue_depth()
        return {
            "service": {k: self.stats[k] for k in sorted(self.stats)},
            "jobs": self.jobs.counts(),
            "cache": self.cache.snapshot(),
            "breaker": self.breaker.snapshot(),
            "limiter": {"clients": len(self.limiter)},
            "queue": {
                "depth": depth,
                "capacity": self.config.queue_depth,
                "watermark": self.config.shed_watermark,
                "shedding": not self.policy.admit(depth),
            },
            "backend": dict(
                self.backend_totals, spec=self.config.backend
            ),
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatchers = [
            asyncio.get_running_loop().create_task(self._dispatch_loop())
            for _ in range(max(1, self.config.parallel_jobs))
        ]

    async def stop(self) -> None:
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._dispatchers = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False, cancel_futures=True)
        self.jobs.close()

    # -- HTTP front end ------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            response = await self._serve_one(reader, writer)
            writer.write(response.serialize())
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # last-ditch guard: still never a 500
            try:
                writer.write(self.pipeline.guard(exc).serialize())
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Response:
        peername = writer.get_extra_info("peername") or ("?",)
        peer = str(peername[0])
        injector = self.config.injector
        if injector is not None and injector.service_fault(
            "slow-client", peer
        ):
            # Chaos: pretend this client dribbled its request past the
            # header deadline — same observable outcome as the real
            # timeout below, without tying up a socket for seconds.
            self._count_status(408)
            self.stats["slow_clients"] = self.stats.get("slow_clients", 0) + 1
            return Response(408, {"error": "request header read timed out"})
        try:
            request = await self._read_request(reader, peer)
        except asyncio.TimeoutError:
            self._count_status(408)
            self.stats["slow_clients"] = self.stats.get("slow_clients", 0) + 1
            return Response(408, {"error": "request read timed out"})
        except ValueError as exc:
            self._count_status(400)
            return Response(400, {"error": str(exc)})
        now = self.now()
        response = self.pipeline.before(request, now)
        if response is None:
            try:
                response = handlers.route(self, request, now)
            except Exception as exc:
                response = self.pipeline.guard(exc)
        self._count_status(response.status)
        return response

    async def _read_request(
        self, reader: asyncio.StreamReader, peer: str
    ) -> Request:
        """Minimal HTTP/1.1 request reader (one request per connection)."""
        cfg = self.config
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=cfg.header_timeout_s
            )
        except asyncio.IncompleteReadError as exc:
            raise ValueError("connection closed mid-request") from exc
        except asyncio.LimitOverrunError as exc:
            raise ValueError("request head too large") from exc
        if len(head) > MAX_HEAD_BYTES:
            raise ValueError("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as exc:
            raise ValueError("malformed content-length") from exc
        if not 0 <= length <= MAX_BODY_BYTES:
            raise ValueError("content-length out of range")
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=cfg.body_timeout_s
                )
            except asyncio.IncompleteReadError as exc:
                raise ValueError("connection closed mid-body") from exc
        return Request(
            method=method, path=path, headers=headers, body=body, peer=peer
        )

    def _count_status(self, status: int) -> None:
        key = f"http_{status}"
        self.stats[key] = self.stats.get(key, 0) + 1

    # -- dispatcher back end -------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            fingerprint = await self._queue.get()
            try:
                await self._process(fingerprint)
            except asyncio.CancelledError:
                raise
            except Exception:
                # A dispatcher must never die: the job is marked failed
                # and the loop keeps draining the queue.
                job = self.jobs.get(fingerprint)
                if job is not None and job.state == QUEUED:
                    self.jobs.mark_failed(
                        job, "dispatcher error", "DispatchError"
                    )
            finally:
                self._queue.task_done()

    async def _process(self, fingerprint: str) -> None:
        job = self.jobs.get(fingerprint)
        if job is None or job.state != QUEUED:
            return  # stale queue token (job already handled elsewhere)
        entry, _why = self.cache.load_verified(fingerprint)
        if entry is not None:
            # Someone (a previous attempt, a sibling service) already
            # produced a verified artifact: finish without simulating.
            self.jobs.mark_done(job)
            return
        # Breaker gate: while the circuit is open, dispatchers idle and
        # the queue backs up — which is exactly what pushes admission
        # over its watermark and turns backend failure into 503s at the
        # front door instead of a pile-up here.
        while not self.breaker.allow(self.now()):
            await asyncio.sleep(
                min(0.05, self.config.breaker_reset_s / 4)
            )
        if job.state != QUEUED:
            # Re-validate after parking on the breaker: while this
            # coroutine slept, the job may have been shed, failed by a
            # sibling dispatcher, or completed from cache.  Marking it
            # running anyway would overwrite that transition.
            return
        self.jobs.mark_running(job)
        injector = self.config.injector
        if injector is not None and injector.service_fault(
            "backend-partition", fingerprint
        ):
            self.stats["partition_injected"] = (
                self.stats.get("partition_injected", 0) + 1
            )
            self._job_failed(
                job,
                "injected backend partition: executor unreachable",
                "ExecutorLost",
                backend_fault=True,
            )
            return
        self.jobs.mark_simulated(job)
        loop = asyncio.get_running_loop()
        try:
            report = await asyncio.wait_for(
                loop.run_in_executor(self._pool, self._run_job_sync, job),
                timeout=self.config.job_timeout_s,
            )
        except asyncio.TimeoutError:
            self.stats["job_timeouts"] = self.stats.get("job_timeouts", 0) + 1
            self._job_failed(
                job,
                f"job exceeded its {self.config.job_timeout_s:g}s "
                f"wall-clock budget",
                "Timeout",
                backend_fault=True,
            )
            return
        except Exception as exc:
            self._job_failed(job, str(exc), type(exc).__name__,
                             backend_fault=True)
            return
        self._absorb_report(report)
        if job.state != RUNNING:
            # Re-validate after the executor await: only a job still
            # in this dispatcher's custody may be completed or failed
            # here (a resubmission could already have re-queued it).
            return
        entry = self._winning_entry(job)
        if entry is None:
            error, error_type, backend_fault = self._classify_failure(report)
            self._job_failed(job, error, error_type,
                             backend_fault=backend_fault)
            return
        reason = entry_unservable_reason(fingerprint, entry)
        if reason is not None:
            # The backend worked; the *result* is unservable (oracle
            # violations, tampered line).  Not a breaker event.
            self.breaker.record_success()
            self.jobs.mark_failed(job, reason, "Unservable")
            return
        path = self.cache.store(fingerprint, entry)
        if injector is not None and injector.service_fault(
            "corrupt-cached-result", fingerprint
        ):
            # Chaos: rot the artifact *after* the store.  Nothing here
            # notices — the point is that the next serve must.
            self.stats["corruption_injected"] = (
                self.stats.get("corruption_injected", 0) + 1
            )
            injector.flip_file_bits(path, n_flips=8, offset_min=16)
        self.breaker.record_success()
        self.jobs.mark_done(job)

    def _run_job_sync(self, job: Job) -> Any:
        """One campaign run for one job (thread-pool side; no service
        state is touched here — the result flows back as the report)."""
        cfg = self.config
        task = CampaignTask(
            task_id=job.fingerprint,
            experiment_id=job.experiment_id,
            kwargs=dict(job.kwargs),
            seed=job.seed,
            registry_spec=job.registry_spec,
        )
        campaign = CampaignConfig(
            workers=max(1, cfg.workers),
            task_timeout_s=cfg.job_timeout_s,
            retry=RetryPolicy(max_retries=cfg.scheduler_retries),
            journal_path=str(self._attempt_journal(job)),
            backend=cfg.backend,
            oracle_mode=cfg.oracle_mode,
        )
        return run_campaign([task], campaign)

    def _attempt_journal(self, job: Job) -> Path:
        """Per-attempt spool journal (attempts never share a file, so a
        torn journal from a timed-out attempt cannot shadow a clean
        later one)."""
        return (
            self.config.spool_dir
            / f"{job.fingerprint}.a{job.attempts}.jsonl"
        )

    def _winning_entry(self, job: Job) -> Optional[Dict[str, Any]]:
        """The CRC'd ``ok`` journal entry of the attempt, if any."""
        entries, _torn, _crc_failed = scan_journal(
            self._attempt_journal(job)
        )
        return completed_fingerprints(entries).get(job.fingerprint)

    def _absorb_report(self, report: Any) -> None:
        """Fold one campaign's backend tallies into the service totals."""
        tallies = report.backend_tallies()
        self.backend_totals["campaigns"] += 1
        self.backend_totals["executors_lost"] += tallies["executors_lost"]
        self.backend_totals["leases_reclaimed"] += tallies["leases_reclaimed"]
        self.backend_totals["work_stolen"] += tallies["work_stolen"]
        self.backend_totals["duplicates_discarded"] += (
            tallies["duplicates_discarded"]
        )
        self.backend_totals["retries_used"] += report.retries_used

    def _classify_failure(self, report: Any) -> tuple[str, str, bool]:
        """``(error, error_type, backend_fault)`` for a failed run.

        Executor losses are backend faults (they feed the breaker);
        experiment errors are the task's own problem and must not open
        the circuit — a dead backend and a bad input are different
        failures with different remedies.
        """
        error, error_type = "task did not complete", "Unknown"
        for task_entry in getattr(report, "tasks", []):
            if task_entry.get("status") != "ok":
                error = str(task_entry.get("error") or error)
                error_type = str(task_entry.get("error_type") or "TaskFailed")
        backend_fault = (
            getattr(report, "executors_lost", 0) > 0
            or error_type == "ExecutorLost"
        )
        return error, error_type, backend_fault

    def _job_failed(
        self, job: Job, error: str, error_type: str, backend_fault: bool
    ) -> None:
        """Record one failed attempt: breaker, then retry-or-fail."""
        if backend_fault:
            self.breaker.record_failure(self.now())
        if backend_fault and job.attempts < self.config.max_job_attempts:
            self.jobs.mark_requeued(job, f"{error_type}: {error}")
            delay_s = self.config.retry_policy.delay_s(
                job.fingerprint, job.attempts
            )
            loop = asyncio.get_running_loop()
            loop.create_task(self._requeue_later(job, delay_s))
            return
        self.jobs.mark_failed(job, error, error_type)

    async def _requeue_later(self, job: Job, delay_s: float) -> None:
        """Backoff, then re-admit; a full queue finalizes the failure
        (never an unbounded wait — the queue's bound is the contract)."""
        await asyncio.sleep(delay_s)
        if job.state != QUEUED:
            return
        if not self.enqueue(job):
            self.jobs.mark_failed(
                job, "re-run queue full after backend loss", "Shed"
            )


class ServiceThread:
    """Run a :class:`ReproService` on a background thread (tests, CI).

    Context manager::

        with ServiceThread(ServiceConfig(port=0, ...)) as svc:
            http_post(f"http://127.0.0.1:{svc.port}/jobs", ...)
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: Optional[ReproService] = None
        self.port: int = 0
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to the starting thread
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = ReproService(self.config)
        await self.service.start()
        self.port = self.service.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()

    def __enter__(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service did not start within 30s")
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error!r}"
            ) from self._error
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=30.0)


def run_service(config: ServiceConfig) -> int:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop)."""

    async def _serve() -> None:
        service = ReproService(config)
        await service.start()
        print(
            f"repro service on http://{config.host}:{service.port} "
            f"(backend={config.backend}, registry={config.registry_spec})",
            flush=True,
        )
        try:
            await asyncio.Event().wait()  # until cancelled
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0
