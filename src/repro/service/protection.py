"""Overload-protection primitives: rate limiting, admission, breaking.

Three small, clock-explicit state machines the service composes into its
backpressure pipeline (see DESIGN.md, "Backpressure state machine"):

* :class:`TokenBucket` / :class:`RateLimiter` — per-client request
  budgets.  A client over budget gets ``429 Too Many Requests`` with a
  ``Retry-After`` computed from the bucket's refill rate, never a
  queued request.
* :class:`AdmissionPolicy` — the bounded job queue's shed rule: admit
  below the watermark, shed ``503`` at or above it.  The queue has a
  hard capacity too, so even a watermark bug cannot grow memory without
  bound.
* :class:`CircuitBreaker` — wraps the executor backend.  Consecutive
  executor losses open the circuit (submissions shed ``503`` instead of
  piling onto a dead backend); after a cooldown one probe job is let
  through half-open, and its verdict closes or re-opens the circuit.

Like :class:`repro.runner.leases.LeaseTable`, nothing here reads a
clock: every transition takes an explicit monotonic ``now``, so unit
tests drive time deterministically and the service's single clock lives
in ``service/server.py`` (the one service file on the RPL103
allowlist).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Circuit breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


@dataclass
class TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at ``rate``/s.

    ``try_take`` either grants the request (returns 0.0) or returns the
    seconds until enough tokens will have accumulated — the value the
    service sends as ``Retry-After``.
    """

    rate: float
    burst: float
    tokens: float = field(default=-1.0)
    updated: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.tokens < 0:
            self.tokens = self.burst

    def _refill(self, now: float) -> None:
        if self.updated < 0:
            self.updated = now
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def try_take(self, now: float, cost: float = 1.0) -> float:
        """Grant *cost* tokens (0.0) or the seconds until they exist."""
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        deficit = cost - self.tokens
        return deficit / self.rate


class RateLimiter:
    """Per-client token buckets with a bounded client table.

    The table is LRU-bounded at ``max_clients`` so an attacker rotating
    client ids cannot grow memory without bound — an evicted client
    simply starts over with a fresh (full) bucket, which only ever errs
    in the client's favor.
    """

    def __init__(
        self, rate: float, burst: float, max_clients: int = 1024
    ) -> None:
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def check(
        self, client: str, now: float, cost: float = 1.0
    ) -> Tuple[bool, float]:
        """``(allowed, retry_after_s)`` for one request from *client*."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(rate=self.rate, burst=self.burst)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        wait = bucket.try_take(now, cost=cost)
        return (wait == 0.0), wait

    def __len__(self) -> int:
        return len(self._buckets)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Shed rule for the bounded job queue.

    ``depth`` is the queue's hard capacity; ``watermark`` is where
    shedding starts.  The gap between them absorbs the race between an
    admission decision and the enqueue it gates.
    """

    depth: int
    watermark: int

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if not 1 <= self.watermark <= self.depth:
            raise ValueError("watermark must be in [1, depth]")

    def admit(self, queued: int) -> bool:
        """True when a job may be enqueued at the current depth."""
        return queued < self.watermark


class CircuitBreaker:
    """Consecutive-failure circuit breaker around the executor backend.

    States: **closed** (normal; failures counted) → **open** after
    ``failure_threshold`` consecutive backend losses (every caller shed
    until ``reset_after_s`` elapses) → **half-open** (exactly one probe
    admitted; its success closes the circuit, its failure re-opens it
    with a fresh cooldown).  Experiment *errors* are not backend
    failures and must not be recorded here — the breaker protects
    against a dead or partitioned backend, not against bad inputs.
    """

    def __init__(
        self, failure_threshold: int = 3, reset_after_s: float = 5.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s <= 0:
            raise ValueError("reset_after_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opens = 0
        self._probe_in_flight = False

    def allow(self, now: float) -> bool:
        """May a backend submission proceed right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if (
                self.opened_at is not None
                and now - self.opened_at >= self.reset_after_s
            ):
                self.state = HALF_OPEN
                self._probe_in_flight = False
            else:
                return False
        # Half-open: exactly one probe at a time.
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def record_success(self) -> None:
        """A backend submission completed; close the circuit."""
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None
        self._probe_in_flight = False

    def record_failure(self, now: float) -> None:
        """A backend loss; open the circuit at the threshold."""
        self.consecutive_failures += 1
        if (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != OPEN:
                self.opens += 1
            self.state = OPEN
            self.opened_at = now
            self._probe_in_flight = False

    def retry_after(self, now: float) -> float:
        """Seconds until the next half-open probe window."""
        if self.state != OPEN or self.opened_at is None:
            return 0.0
        return max(0.0, self.reset_after_s - (now - self.opened_at))

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view for ``/healthz`` and ``/stats``."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
        }
