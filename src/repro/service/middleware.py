"""Request vocabulary and the protection pipeline.

The HTTP layer (``service/server.py``) parses bytes into a
:class:`Request`; handlers return :class:`Response` objects; this
module owns what happens **between** them — the ordered gate every
request passes before any handler runs:

1. **Client identity** — ``X-Client-Id`` header when present, else the
   peer address.  Rate limits are per-client; an unidentified client is
   one bucket per source address.
2. **Rate limiting** — the per-client token bucket.  Over budget →
   ``429`` with ``Retry-After``; the request never reaches admission.
   A ``request-flood`` chaos directive from the fault injector
   amplifies the token cost of flagged requests, driving the limiter
   into shedding deterministically in tests without needing thousands
   of real sockets.
3. **Error guard** — a handler exception becomes a ``503`` (journaled
   and counted), never a ``500``: the service's contract under chaos is
   that every response is one of 200/400/404/408/429/503, and an
   unexpected bug sheds load instead of leaking a traceback.

``/healthz`` and ``/stats`` bypass the rate limiter — operators must be
able to observe an overloaded service precisely when it is shedding.

Responses are rendered as canonical JSON (sorted keys, fixed
separators): byte-identical payloads for identical cached results are a
service guarantee, not an accident of dict ordering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: HTTP reason phrases for the status codes the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

#: Paths exempt from rate limiting (observability must survive overload).
UNMETERED_PATHS = ("/healthz", "/stats")


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    peer: str = ""

    @property
    def client_id(self) -> str:
        """Rate-limit key: explicit client header, else peer address."""
        return self.headers.get("x-client-id", "") or self.peer or "?"

    def json(self) -> Any:
        """Parsed body, or raise ``ValueError`` on malformed JSON."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc


@dataclass
class Response:
    """One HTTP response; payload is rendered as canonical JSON."""

    status: int
    payload: Dict[str, Any] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    def body_bytes(self) -> bytes:
        """Canonical encoding: sorted keys, no whitespace jitter."""
        return json.dumps(
            self.payload, sort_keys=True, separators=(",", ":"),
            default=str,
        ).encode("utf-8")

    def serialize(self) -> bytes:
        body = self.body_bytes()
        reason = REASONS.get(self.status, "OK")
        head = [f"HTTP/1.1 {self.status} {reason}"]
        headers = {
            "content-type": "application/json",
            "content-length": str(len(body)),
            "connection": "close",
        }
        headers.update({k.lower(): v for k, v in self.headers.items()})
        head.extend(f"{name}: {value}" for name, value in headers.items())
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def shed(status: int, why: str, retry_after_s: float = 0.0) -> Response:
    """A load-shedding response: 429/503 with ``Retry-After``."""
    headers = {}
    if retry_after_s > 0:
        # Ceil to a whole second: Retry-After is integer seconds, and
        # rounding down would invite an immediate, futile retry.
        headers["retry-after"] = str(max(1, int(retry_after_s + 0.999)))
    return Response(status, {"error": why, "status": "shed"}, headers)


class ProtectionPipeline:
    """The pre-handler gate: identity → flood chaos → rate limit."""

    def __init__(
        self,
        limiter: Any,
        stats: Dict[str, int],
        injector: Any = None,
        flood_cost_factor: float = 0.0,
    ) -> None:
        self.limiter = limiter
        self.stats = stats
        self.injector = injector
        #: Token cost of an injected-flood request, as a fraction of the
        #: bucket burst (0 disables; 1.0 drains the whole bucket).
        self.flood_cost_factor = flood_cost_factor

    def before(self, request: Request, now: float) -> Optional[Response]:
        """A shedding response, or None to let the request through."""
        if request.path in UNMETERED_PATHS:
            return None
        cost = 1.0
        if (
            self.injector is not None
            and hasattr(self.injector, "service_fault")
            and self.injector.service_fault(
                "request-flood", request.client_id
            )
        ):
            burst = getattr(self.limiter, "burst", 1.0)
            cost = max(1.0, burst * (self.flood_cost_factor or 1.0))
            self.stats["flood_injected"] = (
                self.stats.get("flood_injected", 0) + 1
            )
        allowed, retry_after_s = self.limiter.check(
            request.client_id, now, cost=cost
        )
        if allowed:
            return None
        self.stats["rate_limited"] = self.stats.get("rate_limited", 0) + 1
        return shed(429, "rate limit exceeded for this client", retry_after_s)

    def guard(self, exc: Exception) -> Response:
        """Map an unexpected handler exception to a shed, never a 500."""
        self.stats["errors_guarded"] = self.stats.get("errors_guarded", 0) + 1
        return shed(
            503,
            f"internal error shed ({type(exc).__name__}); "
            f"the request was not processed",
            retry_after_s=1.0,
        )
