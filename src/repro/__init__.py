"""repro: a reproduction of "Die Stacking (3D) Microarchitecture"
(Black et al., MICRO-39, 2006).

The library rebuilds the paper's entire modeling environment in Python:

* ``repro.core`` — the 3D stacking studies themselves (Memory+Logic and
  Logic+Logic) and the experiment registry for every table and figure.
* ``repro.memsim`` — the trace-driven multi-processor memory hierarchy
  simulator (Section 2.1).
* ``repro.traces`` — dependency-annotated RMS workload trace generation
  (Table 1).
* ``repro.uarch`` — the deeply pipelined microarchitecture performance,
  power, and DVFS models (Sections 2.2 and 4).
* ``repro.thermal`` — the 3D finite-volume thermal simulator
  (Section 2.3, Table 2).
* ``repro.floorplan`` — block-level floorplans and power maps for the
  studied processors.
* ``repro.analysis`` — tables, ASCII thermal maps, and paper-vs-measured
  comparison rendering.

Quick start::

    from repro.core.memory_on_logic import run_memory_study
    from repro.core.logic_on_logic import run_logic_study

    memory = run_memory_study(workloads=["svm", "gauss"], scale=8)
    print(memory.cpma["svm"])          # CPMA per configuration
    logic = run_logic_study()
    print(logic.total_gain_pct)        # ~15% (Table 4)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "floorplan",
    "memsim",
    "thermal",
    "traces",
    "uarch",
]
