"""Reports for the closed-loop thermal/DVFS co-simulation.

Two views of a coupled run: the per-epoch trace (what each side of the
loop saw, epoch by epoch) and the policy comparison — a Pareto-style
table over (performance kept, peak temperature) with dominated policies
marked, so "which DTM policy should I ship" is answerable at a glance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.tables import format_table


def format_epoch_trace(
    result: Mapping[str, Any], max_rows: int = 0
) -> str:
    """Per-epoch trace table of one coupled run.

    Args:
        result: A ``CoupledResult.to_dict()`` (or an experiment result
            containing its keys).
        max_rows: Truncate to the first *max_rows* epochs (0 = all).
    """
    epochs: Sequence[Mapping[str, Any]] = result["epochs"]
    if max_rows > 0:
        epochs = epochs[:max_rows]
    rows = [
        [
            e["epoch"],
            e["t_s"],
            e["activity"],
            e["vcc"],
            e["power_w"],
            e["perf_pct"],
            e["peak_c"],
            "*" if e["throttled"] else "",
        ]
        for e in epochs
    ]
    title = (
        f"policy={result['policy']}  ceiling={result['ceiling_c']:.2f} C  "
        f"tau={result['tau_s']:.2f} s"
    )
    return format_table(
        ["epoch", "t_s", "activity", "vcc", "power_w", "perf_pct",
         "peak_c", "throttled"],
        rows,
        title=title,
    )


def pareto_front(
    summaries: Sequence[Mapping[str, Any]],
) -> List[bool]:
    """Which policies are Pareto-optimal on (avg perf up, max peak down).

    A policy is dominated if another keeps at least as much performance
    at an equal-or-lower peak temperature, strictly better in one of
    the two.  Returns one flag per input summary, True = on the front.
    """
    front: List[bool] = []
    for i, a in enumerate(summaries):
        dominated = False
        for j, b in enumerate(summaries):
            if i == j:
                continue
            no_worse = (
                b["avg_perf_pct"] >= a["avg_perf_pct"]
                and b["max_peak_c"] <= a["max_peak_c"]
            )
            better = (
                b["avg_perf_pct"] > a["avg_perf_pct"]
                or b["max_peak_c"] < a["max_peak_c"]
            )
            if no_worse and better:
                dominated = True
                break
        front.append(not dominated)
    return front


def format_policy_comparison(
    summaries: Sequence[Mapping[str, Any]],
    ceiling_c: Optional[float] = None,
) -> str:
    """Pareto-style comparison table of DTM policy summaries.

    Args:
        summaries: ``CoupledResult.summary()`` dicts, one per policy.
        ceiling_c: Ceiling to annotate in the title (defaults to the
            first summary's).
    """
    if not summaries:
        return "no policies to compare"
    if ceiling_c is None:
        ceiling_c = summaries[0]["ceiling_c"]
    front = pareto_front(summaries)
    rows = [
        [
            s["policy"],
            s["avg_perf_pct"],
            s["max_peak_c"],
            s["final_peak_c"],
            s["final_vcc"],
            s["energy_j"],
            s["exceeded_epochs"],
            "pareto" if on_front else "dominated",
        ]
        for s, on_front in zip(summaries, front)
    ]
    return format_table(
        ["policy", "avg_perf_pct", "max_peak_c", "final_peak_c",
         "final_vcc", "energy_j", "exceeded", "front"],
        rows,
        title=f"DTM policy comparison (ceiling {ceiling_c:.2f} C)",
    )


def format_spike_report(result: Mapping[str, Any]) -> str:
    """Render the ``dtm_load_spike`` experiment result.

    One comparison table plus the pass/fail line the experiment exists
    to answer: did the control run bust the ceiling while every DTM
    policy stayed under it?
    """
    policies: Dict[str, Mapping[str, Any]] = result["policies"]
    table = format_policy_comparison(
        list(policies.values()), ceiling_c=result["ceiling_c"]
    )
    control = result["control_exceeded_epochs"]
    dtm = result["dtm_exceeded_epochs"]
    verdict = (
        "PASS" if control > 0 and all(v == 0 for v in dtm.values())
        else "FAIL"
    )
    return (
        f"{table}\n"
        f"control exceeded {control} epochs; "
        f"DTM exceedances: {dtm} -> {verdict}"
    )
