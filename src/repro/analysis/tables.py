"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a simple aligned text table.

    Floats are formatted with *float_format*; everything else with str().
    """
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows))
        if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_figure5(
    cpma: Mapping[str, Mapping[str, float]],
    bandwidth: Mapping[str, Mapping[str, float]],
    config_names: Sequence[str] = ("2D 4MB", "3D 12MB", "3D 32MB", "3D 64MB"),
) -> str:
    """Render the Figure 5 sweep: CPMA and BW per workload and capacity."""
    headers = ["workload"]
    headers += [f"CPMA {name}" for name in config_names]
    headers += [f"BW {name}" for name in config_names]
    rows = []
    for workload in cpma:
        row: List[Any] = [workload]
        row += [cpma[workload][name] for name in config_names]
        row += [bandwidth[workload][name] for name in config_names]
        rows.append(row)
    # Average row, as in the figure's "Avg" group.
    avg: List[Any] = ["Avg"]
    n = len(cpma)
    for name in config_names:
        avg.append(sum(cpma[w][name] for w in cpma) / n)
    for name in config_names:
        avg.append(sum(bandwidth[w][name] for w in bandwidth) / n)
    rows.append(avg)
    return format_table(
        headers, rows,
        title="Figure 5: CPMA and off-die bandwidth (GB/s) vs capacity",
    )


def format_table5(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render Table 5 rows (dicts with name/vcc/freq/power/perf/temp)."""
    headers = ["", "Pwr (W)", "Pwr %", "Temp (C)", "Perf %", "Vcc", "Freq"]
    body = []
    for row in rows:
        temp = row.get("temp_c")
        body.append(
            [
                row["name"],
                row["power_w"],
                row["power_pct"],
                temp if temp is not None else "-",
                row["perf_pct"],
                row["vcc"],
                row["freq"],
            ]
        )
    return format_table(
        headers, body,
        title="Table 5: frequency and voltage scaling of the 3D floorplan",
    )


def format_dict(values: Dict[str, Any], title: Optional[str] = None) -> str:
    """Render a flat key/value mapping as a two-column table."""
    return format_table(
        ["key", "value"], [[k, v] for k, v in values.items()], title=title
    )
