"""Paper-vs-measured comparison rendering.

Used by the benchmark harness and EXPERIMENTS.md generation to put every
measured number next to its published counterpart with a deviation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Union

Number = Union[int, float]


@dataclass(frozen=True)
class ComparisonRow:
    """One compared quantity.

    Attributes:
        name: Quantity label.
        paper: Published value (None if the paper gives only a shape).
        measured: Our value.
        unit: Display unit.
    """

    name: str
    paper: Optional[Number]
    measured: Number
    unit: str = ""

    @property
    def deviation_pct(self) -> Optional[float]:
        """Relative deviation from the paper value, percent."""
        if self.paper is None or self.paper == 0:
            return None
        return 100.0 * (self.measured - self.paper) / abs(self.paper)

    def render(self) -> str:
        paper = "-" if self.paper is None else f"{self.paper:.2f}"
        deviation = self.deviation_pct
        dev = "" if deviation is None else f"  ({deviation:+.1f}%)"
        unit = f" {self.unit}" if self.unit else ""
        return (
            f"{self.name:32} paper {paper:>8}{unit:6} "
            f"measured {self.measured:8.2f}{unit}{dev}"
        )


def compare_to_paper(
    paper: Mapping[str, Number],
    measured: Mapping[str, Number],
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Render aligned paper-vs-measured rows for matching keys."""
    rows: List[str] = []
    if title:
        rows.append(title)
    for key, paper_value in paper.items():
        if key not in measured:
            continue
        rows.append(
            ComparisonRow(
                name=key,
                paper=float(paper_value),
                measured=float(measured[key]),
                unit=unit,
            ).render()
        )
    return "\n".join(rows)
