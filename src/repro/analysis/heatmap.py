"""ASCII rendering of thermal and power-density maps.

Terminal-friendly stand-in for the colour maps of Figures 6 and 8: each
cell of a 2D field becomes a character from a luminance ramp, with the
extremes annotated — enough to see the hotspot structure (FP/RS/LdSt hot,
cache cool, epoxy edge drop) without a plotting stack.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Luminance ramp, coolest to hottest.
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    field: np.ndarray,
    width: int = 64,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Render a 2D array as an ASCII heat map.

    Args:
        field: 2D array (row 0 rendered at the bottom, like die
            coordinates).
        width: Output width in characters; height follows the aspect
            ratio (characters are ~2x taller than wide).
        vmin: Scale minimum (default: field min).
        vmax: Scale maximum (default: field max).
        title: Optional heading.

    Returns:
        The rendered map with a scale legend.
    """
    if field.ndim != 2:
        raise ValueError(f"expected a 2D field, got shape {field.shape}")
    lo = float(field.min()) if vmin is None else vmin
    hi = float(field.max()) if vmax is None else vmax
    span = max(hi - lo, 1e-12)

    ny, nx = field.shape
    width = max(8, width)
    height = max(4, int(width * ny / nx / 2))
    # Nearest-neighbour resample to the character grid.
    ys = (np.arange(height) + 0.5) * ny / height
    xs = (np.arange(width) + 0.5) * nx / width
    sampled = field[ys.astype(int)[:, None], xs.astype(int)[None, :]]

    lines = []
    if title:
        lines.append(title)
    for j in range(height - 1, -1, -1):
        chars = []
        for i in range(width):
            t = (sampled[j, i] - lo) / span
            idx = int(min(max(t, 0.0), 1.0) * (len(_RAMP) - 1))
            chars.append(_RAMP[idx])
        lines.append("".join(chars))
    lines.append(
        f"scale: '{_RAMP[0]}' = {lo:.2f}  ..  '{_RAMP[-1]}' = {hi:.2f}"
    )
    return "\n".join(lines)
