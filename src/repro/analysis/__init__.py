"""Reporting utilities: tables, ASCII heat maps, paper comparisons."""

from repro.analysis.tables import format_table, format_figure5, format_table5
from repro.analysis.heatmap import ascii_heatmap
from repro.analysis.campaign import render_campaign_report
from repro.analysis.compare import ComparisonRow, compare_to_paper
from repro.analysis.coupled import (
    format_epoch_trace,
    format_policy_comparison,
    format_spike_report,
    pareto_front,
)
from repro.analysis.figures import (
    SvgCanvas,
    render_all_figures,
    render_figure3,
    render_figure5,
    render_grouped_bars,
    render_lines,
    render_paper_comparison_bars,
)

__all__ = [
    "format_table",
    "format_figure5",
    "format_table5",
    "ascii_heatmap",
    "render_campaign_report",
    "ComparisonRow",
    "compare_to_paper",
    "format_epoch_trace",
    "format_policy_comparison",
    "format_spike_report",
    "pareto_front",
    "SvgCanvas",
    "render_all_figures",
    "render_figure3",
    "render_figure5",
    "render_grouped_bars",
    "render_lines",
    "render_paper_comparison_bars",
]
