"""SVG renderings of the paper's figures.

Dependency-free SVG generation for the regenerated evaluation artifacts:
Figure 3 (conductivity sensitivity curves), Figure 5 (CPMA and off-die
bandwidth panels), and the Figure 8/11 peak-temperature bars with the
published values alongside.

Styling follows a validated categorical palette (fixed slot order —
ordering is the colour-vision-safety mechanism), thin marks with rounded
data ends, one value axis per panel (bandwidth gets its own panel rather
than a second y-axis), recessive grid, and text in ink colours rather
than series colours.  Every mark carries a ``<title>`` so browsers show
a value tooltip.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union
from xml.sax.saxutils import escape

#: Validated categorical palette, fixed slot order (light mode).
SERIES_COLORS = ["#2a78d6", "#1baf7a", "#eda100", "#008300",
                 "#4a3aa7", "#e34948"]
SURFACE = "#fcfcfb"
INK_PRIMARY = "#0b0b0b"
INK_SECONDARY = "#52514e"
GRID = "#e4e3df"


class SvgCanvas:
    """A minimal SVG document builder."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas must have positive dimensions")
        self.width = width
        self.height = height
        self._parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'font-family="Helvetica, Arial, sans-serif">',
            f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        ]

    def rect(self, x: float, y: float, w: float, h: float, fill: str,
             rx: float = 0.0, title: Optional[str] = None) -> None:
        tooltip = f"<title>{escape(title)}</title>" if title else ""
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" rx="{rx:.1f}" fill="{fill}">{tooltip}</rect>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str, width: float = 1.0, dash: str = "") -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{stroke}" '
            f'stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points: Sequence[Sequence[float]], stroke: str,
                 width: float = 2.0) -> None:
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}" stroke-linejoin="round"/>'
        )

    def circle(self, x: float, y: float, r: float, fill: str,
               title: Optional[str] = None) -> None:
        tooltip = f"<title>{escape(title)}</title>" if title else ""
        self._parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" '
            f'fill="{fill}" stroke="{SURFACE}" stroke-width="2">'
            f"{tooltip}</circle>"
        )

    def text(self, x: float, y: float, content: str, size: int = 11,
             fill: str = INK_PRIMARY, anchor: str = "start",
             rotate: Optional[float] = None) -> None:
        transform = (
            f' transform="rotate({rotate:.0f} {x:.1f} {y:.1f})"'
            if rotate is not None
            else ""
        )
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'fill="{fill}" text-anchor="{anchor}"{transform}>'
            f"{escape(content)}</text>"
        )

    def to_string(self) -> str:
        return "\n".join(self._parts + ["</svg>"])

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_string())
        return path


def _nice_ceiling(value: float) -> float:
    """A pleasant axis maximum at or above *value*."""
    if value <= 0:
        return 1.0
    magnitude = 10 ** len(str(int(value))) / 10
    for factor in (1, 2, 2.5, 5, 10):
        if value <= factor * magnitude:
            return factor * magnitude
    return 10 * magnitude


def _value_axis(canvas: SvgCanvas, x0: float, y0: float, y1: float,
                vmax: float, label: str, ticks: int = 4) -> None:
    """Left value axis with a recessive grid across to the right edge."""
    for i in range(ticks + 1):
        value = vmax * i / ticks
        y = y1 - (y1 - y0) * i / ticks
        canvas.line(x0, y, canvas.width - 16, y, GRID, 1.0)
        canvas.text(x0 - 6, y + 4, f"{value:g}", size=10,
                    fill=INK_SECONDARY, anchor="end")
    canvas.text(14, (y0 + y1) / 2, label, size=11, fill=INK_SECONDARY,
                anchor="middle", rotate=-90)


def render_grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    series_names: Sequence[str],
    title: str,
    value_label: str,
    path: Union[str, Path],
    width: int = 960,
    height: int = 360,
) -> Path:
    """A grouped bar panel: one group per key, one bar per series.

    Bars use the fixed categorical slot order with a 2px surface gap and
    rounded data ends; a legend row names the series.
    """
    if not groups:
        raise ValueError("no groups to render")
    canvas = SvgCanvas(width, height)
    margin_left, margin_top, margin_bottom = 56, 52, 44
    plot_w = width - margin_left - 24
    plot_h = height - margin_top - margin_bottom
    y_base = margin_top + plot_h

    vmax = _nice_ceiling(
        max(row[name] for row in groups.values() for name in series_names)
    )
    canvas.text(margin_left, 22, title, size=14)
    _value_axis(canvas, margin_left, margin_top, y_base, vmax, value_label)

    n_groups = len(groups)
    n_series = len(series_names)
    group_w = plot_w / n_groups
    bar_w = max(3.0, (group_w - 14) / n_series - 2)

    for g_index, (group, row) in enumerate(groups.items()):
        gx = margin_left + g_index * group_w + 7
        for s_index, name in enumerate(series_names):
            value = row[name]
            h = (value / vmax) * plot_h if vmax else 0.0
            x = gx + s_index * (bar_w + 2)
            canvas.rect(
                x, y_base - h, bar_w, h,
                SERIES_COLORS[s_index % len(SERIES_COLORS)], rx=2.0,
                title=f"{group} — {name}: {value:.2f}",
            )
        canvas.text(gx + (group_w - 14) / 2, y_base + 16, group, size=10,
                    fill=INK_SECONDARY, anchor="middle")
    canvas.line(margin_left, y_base, margin_left + plot_w, y_base,
                INK_SECONDARY, 1.0)

    # Legend row (identity never by colour alone: swatch + name).
    lx = margin_left
    ly = height - 12
    for s_index, name in enumerate(series_names):
        canvas.rect(lx, ly - 9, 10, 10,
                    SERIES_COLORS[s_index % len(SERIES_COLORS)], rx=2.0)
        canvas.text(lx + 14, ly, name, size=10, fill=INK_SECONDARY)
        lx += 14 + 7 * len(name) + 22
    return canvas.save(path)


def render_lines(
    curves: Mapping[str, Mapping[float, float]],
    title: str,
    x_label: str,
    value_label: str,
    path: Union[str, Path],
    width: int = 760,
    height: int = 420,
) -> Path:
    """A line panel: one series per curve, markers on every point,
    direct labels at the line ends plus a legend."""
    if not curves:
        raise ValueError("no curves to render")
    canvas = SvgCanvas(width, height)
    margin_left, margin_top, margin_bottom = 60, 52, 56
    plot_w = width - margin_left - 120
    plot_h = height - margin_top - margin_bottom
    y_base = margin_top + plot_h

    xs = sorted({x for curve in curves.values() for x in curve})
    all_values = [v for curve in curves.values() for v in curve.values()]
    vmin = min(all_values)
    vmax = max(all_values)
    pad = max((vmax - vmin) * 0.15, 0.5)
    vmin -= pad
    vmax += pad

    def sx(x: float) -> float:
        span = xs[-1] - xs[0] or 1.0
        return margin_left + (x - xs[0]) / span * plot_w

    def sy(v: float) -> float:
        return y_base - (v - vmin) / (vmax - vmin) * plot_h

    canvas.text(margin_left, 22, title, size=14)
    for i in range(5):
        v = vmin + (vmax - vmin) * i / 4
        canvas.line(margin_left, sy(v), margin_left + plot_w, sy(v), GRID)
        canvas.text(margin_left - 6, sy(v) + 4, f"{v:.0f}", size=10,
                    fill=INK_SECONDARY, anchor="end")
    for x in xs:
        canvas.text(sx(x), y_base + 16, f"{x:g}", size=10,
                    fill=INK_SECONDARY, anchor="middle")
    canvas.text(margin_left + plot_w / 2, height - 14, x_label, size=11,
                fill=INK_SECONDARY, anchor="middle")
    canvas.text(16, (margin_top + y_base) / 2, value_label, size=11,
                fill=INK_SECONDARY, anchor="middle", rotate=-90)

    for index, (name, curve) in enumerate(curves.items()):
        color = SERIES_COLORS[index % len(SERIES_COLORS)]
        points = [(sx(x), sy(curve[x])) for x in sorted(curve)]
        canvas.polyline(points, color, 2.0)
        for x in sorted(curve):
            canvas.circle(sx(x), sy(curve[x]), 4.0, color,
                          title=f"{name} @ {x:g}: {curve[x]:.2f}")
        end_x, end_y = points[-1]
        canvas.text(end_x + 10, end_y + 4, name, size=11,
                    fill=INK_PRIMARY)
    return canvas.save(path)


def render_paper_comparison_bars(
    measured: Mapping[str, float],
    paper: Mapping[str, float],
    title: str,
    value_label: str,
    path: Union[str, Path],
    width: int = 640,
    height: int = 360,
) -> Path:
    """Measured-vs-paper paired bars (Figures 8a and 11)."""
    groups: Dict[str, Dict[str, float]] = {}
    for name, value in measured.items():
        groups[name] = {"measured": value}
        if name in paper:
            groups[name]["paper"] = paper[name]
    return render_grouped_bars(
        groups, ["measured", "paper"], title, value_label, path,
        width=width, height=height,
    )


def render_figure3(
    result: Mapping[str, Mapping[float, float]], path: Union[str, Path]
) -> Path:
    """Figure 3: peak temperature vs layer thermal conductivity."""
    curves = {
        "Cu metal layers": dict(result["cu_metal"]),
        "Bonding layer": dict(result["bond"]),
    }
    return render_lines(
        curves,
        "Figure 3: heat dissipation sensitivity",
        "thermal conductivity (W/mK)",
        "peak temperature (C)",
        path,
    )


def render_figure5(
    cpma: Mapping[str, Mapping[str, float]],
    bandwidth: Mapping[str, Mapping[str, float]],
    cpma_path: Union[str, Path],
    bandwidth_path: Union[str, Path],
) -> List[Path]:
    """Figure 5 as two single-axis panels (CPMA bars; bandwidth bars).

    The paper overlays bandwidth on a secondary axis; two aligned panels
    carry the same content with one scale each.
    """
    config_names = ["2D 4MB", "3D 12MB", "3D 32MB", "3D 64MB"]
    return [
        render_grouped_bars(
            cpma, config_names,
            "Figure 5 (panel 1): cycles per memory access",
            "CPMA", cpma_path,
        ),
        render_grouped_bars(
            bandwidth, config_names,
            "Figure 5 (panel 2): off-die bandwidth",
            "GB/s", bandwidth_path,
        ),
    ]


def render_all_figures(
    out_dir: Union[str, Path],
    scale: int = 16,
    length_factor: float = 0.5,
    nx: int = 40,
    workloads: Optional[List[str]] = None,
) -> List[Path]:
    """Regenerate every renderable figure into *out_dir*.

    Runs the underlying experiments at reduced size (see the arguments)
    and writes ``figure3.svg``, ``figure5_cpma.svg``, ``figure5_bw.svg``,
    ``figure8.svg``, and ``figure11.svg``.
    """
    from repro.core.experiments import get_experiment
    from repro.core.logic_on_logic import (
        run_thermal_study as logic_thermals,
    )
    from repro.core.memory_on_logic import (
        run_performance_study,
        run_thermal_study as memory_thermals,
    )
    from repro.thermal.solver import SolverConfig

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    fig3 = get_experiment("figure-3").run(nx=nx)
    written.append(render_figure3(fig3, out / "figure3.svg"))

    memory = run_performance_study(
        workloads=workloads, scale=scale, length_factor=length_factor
    )
    written.extend(
        render_figure5(
            memory.cpma, memory.bandwidth,
            out / "figure5_cpma.svg", out / "figure5_bw.svg",
        )
    )

    grid = SolverConfig(nx=nx, ny=nx)
    fig8_paper = {"2D 4MB": 88.35, "3D 12MB": 92.85, "3D 32MB": 88.43,
                  "3D 64MB": 90.27}
    written.append(
        render_paper_comparison_bars(
            memory_thermals(grid), fig8_paper,
            "Figure 8a: peak temperature by configuration",
            "peak C", out / "figure8.svg",
        )
    )
    fig11_paper = {"2D Baseline": 98.6, "3D": 112.5, "3D Worstcase": 124.75}
    written.append(
        render_paper_comparison_bars(
            logic_thermals(grid), fig11_paper,
            "Figure 11: Logic+Logic peak temperature",
            "peak C", out / "figure11.svg",
        )
    )
    return written
