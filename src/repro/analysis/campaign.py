"""Render a campaign report (``repro sweep``) for humans.

Takes the plain-dict form of
:class:`repro.runner.supervisor.CampaignReport` (``report.to_dict()``)
so this module stays import-independent of the runner — analysis renders
data, it does not orchestrate.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.analysis.tables import format_table

#: Status glyphs for the per-task table.
_GLYPHS = {
    "ok": "ok",
    "error": "ERR",
    "crash": "CRASH",
    "timeout": "TIMEOUT",
    "worker-dead": "DEAD",
    "corrupt-result": "CORRUPT",
    "executor-lost": "LOST",
}


def render_campaign_report(report: Dict[str, Any]) -> str:
    """Human-readable campaign summary: per-task table + verdict.

    A degraded campaign still renders completely — that is the point:
    partial failure produces a report, not an exception.
    """
    lines: List[str] = []
    tasks = report.get("tasks", [])
    rows = []
    for task in tasks:
        status = task.get("status", "?")
        note = ""
        if task.get("resumed"):
            note = "resumed from journal"
        elif status != "ok":
            note = f"{task.get('error_type') or ''}: {task.get('error') or ''}"
            note = note.strip(": ")[:60]
        rows.append([
            task.get("task_id", "?"),
            _GLYPHS.get(status, status),
            str(task.get("attempt", 0) + 1),
            f"{float(task.get('elapsed_s') or 0.0):.2f}s",
            note,
        ])
    lines.append(format_table(
        ["task", "status", "attempts", "elapsed", "notes"],
        rows,
        title="Campaign results",
    ))

    counts = report.get("counts", {})
    lines.append("")
    lines.append(
        f"tasks: {counts.get('ok', 0)} ok, {counts.get('failed', 0)} failed"
        + (f", {counts.get('skipped', 0)} resumed"
           if counts.get("skipped") else "")
    )
    taxonomy = report.get("taxonomy", {})
    if taxonomy:
        failures = ", ".join(
            f"{name}: {count}" for name, count in sorted(taxonomy.items())
        )
        lines.append(f"failure taxonomy (all attempts): {failures}")
    if report.get("retries_used"):
        lines.append(f"retries used: {report['retries_used']}")
    if report.get("degraded_solves") or report.get("fallback_solves"):
        lines.append(
            f"thermal solves: {report.get('fallback_solves', 0)} via "
            f"fallback rungs, {report.get('degraded_solves', 0)} degraded "
            f"(coarser grid than requested)"
        )
    if report.get("torn_journal_lines") or report.get("corrupt_journal_lines"):
        lines.append(
            f"journal: {report.get('torn_journal_lines', 0)} torn line(s), "
            f"{report.get('corrupt_journal_lines', 0)} CRC-failed line(s) "
            f"skipped on resume"
        )
    if report.get("stale_resume"):
        lines.append(
            f"resume: {report['stale_resume']} journaled-ok entr(ies) had "
            f"a fingerprint/input mismatch and were re-run"
        )
    if report.get("oracle_checks") or report.get("oracle_violations"):
        lines.append(
            f"oracles: {report.get('oracle_checks', 0)} checks, "
            f"{report.get('oracle_violations', 0)} violation(s)"
        )
    backend = report.get("backend", "local")
    failover_bits = []
    if report.get("executors_lost"):
        failover_bits.append(f"{report['executors_lost']} executor(s) lost")
    if report.get("leases_reclaimed"):
        failover_bits.append(
            f"{report['leases_reclaimed']} lease(s) reclaimed"
        )
    if report.get("work_stolen"):
        failover_bits.append(f"{report['work_stolen']} task(s) work-stolen")
    if report.get("duplicate_completions"):
        failover_bits.append(
            f"{report['duplicate_completions']} duplicate completion(s) "
            f"discarded"
        )
    lines.append(
        f"backend: {backend}"
        + (f" — {', '.join(failover_bits)}" if failover_bits else "")
    )
    per_executor = report.get("per_executor", {})
    if len(per_executor) > 1 or failover_bits:
        for executor, tallies in sorted(per_executor.items()):
            lines.append(
                f"  {executor}: {tallies.get('ok', 0)} ok, "
                f"{tallies.get('failed', 0)} failed, "
                f"{tallies.get('duplicates', 0)} duplicate(s)"
            )
    lines.append(f"wall clock: {report.get('wall_clock_s', 0.0):.2f}s")
    if report.get("degraded"):
        if report.get("executors_lost") and not counts.get("failed"):
            lines.append(
                "verdict: DEGRADED — campaign completed (surviving "
                "executors stole the orphaned work), but an executor was "
                "lost mid-campaign; results are complete and journaled"
            )
        elif report.get("oracle_violations") and not counts.get("failed"):
            lines.append(
                "verdict: DEGRADED — campaign completed, but runtime "
                "oracles detected corruption and fell back to reference "
                "paths (see oracle counts above)"
            )
        else:
            lines.append(
                "verdict: DEGRADED — campaign completed, but some tasks "
                "exhausted their retry budget (see table); re-run failures "
                f"with --resume --journal {report.get('journal_path', '?')}"
            )
    else:
        lines.append("verdict: OK — every task completed")
    return "\n".join(lines)
