"""Deterministic simulation testing (DST) for the distributed stack.

FoundationDB-style testing: a single-threaded discrete-event harness
drives the *real* scheduler, lease table, journal, result cache, and
service protection state machines through thousands of randomized fault
histories on a virtual clock, asserting protocol invariants after every
event.  A violating history is shrunk to a minimal failing prefix and
emitted as a replayable ``(seed, schedule)`` artifact.

Entry points: ``repro dst --seeds N`` explores a seed batch;
``repro dst --replay FILE`` re-executes a saved artifact bit-identically.
"""

from repro.dst.harness import HistoryResult, explore, replay, run_history
from repro.dst.schedule import (
    FaultEvent,
    FaultSchedule,
    generate_schedule,
    load_artifact,
    save_artifact,
)
from repro.dst.shrink import shrink_schedule

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "HistoryResult",
    "explore",
    "generate_schedule",
    "load_artifact",
    "replay",
    "run_history",
    "save_artifact",
    "shrink_schedule",
]
