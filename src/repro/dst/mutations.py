"""Deliberate protocol bugs, for validating that DST actually catches.

A simulation harness that never fails is indistinguishable from one
that checks nothing.  Each mutation here re-introduces a specific
safety bug into the *real* scheduler for the duration of a ``with``
block; the DST test suite asserts that fault exploration finds a
violating history for each, and that the shrinker reduces it to a
handful of events.  ``repro dst --mutate NAME`` exposes the same thing
for manual runs.

Mutations:

* ``drop-fencing`` — lease fencing disabled entirely: every completion
  passes the fence check.  A zombie executor's late ``ok`` can then
  shadow (or double up on) the re-granted attempt's result.
* ``fence-off-by-one`` — the fence comparison uses ``<`` instead of
  ``<=``: a zombie writing at *exactly* the reclaimed epoch is
  accepted.  The classic boundary bug fencing tokens exist to close.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.runner.scheduler import Scheduler


def _no_fence(self, fingerprint, epoch):  # noqa: ANN001
    del self, fingerprint, epoch
    return False


def _off_by_one_fence(self, fingerprint, epoch):  # noqa: ANN001
    if epoch is None:
        return False
    return int(epoch) < self._fence_by_fp.get(fingerprint, 0)


MUTATIONS = {
    "drop-fencing": _no_fence,
    "fence-off-by-one": _off_by_one_fence,
}


@contextmanager
def apply_mutation(name: Optional[str]) -> Iterator[None]:
    """Patch the named bug into the scheduler for the block's duration."""
    if name is None:
        yield
        return
    if name not in MUTATIONS:
        raise ValueError(
            f"unknown mutation {name!r}; known: {', '.join(sorted(MUTATIONS))}"
        )
    original = Scheduler._is_fenced
    Scheduler._is_fenced = MUTATIONS[name]
    try:
        yield
    finally:
        Scheduler._is_fenced = original


__all__ = ["MUTATIONS", "apply_mutation"]
