"""The simulated campaign's workload: tiny, pure, value-checkable.

DST stresses the *coordination* layer, not the science: each workload
experiment is a trivial pure function whose result is recomputable from
its inputs alone, so the harness can assert — independently of the
journal — that whatever result a history reports for a task is the
*correct* result for that task's inputs, no matter which executor
incarnation produced it.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List

from repro.core.experiments import Experiment, ExperimentRegistry
from repro.runner.tasks import CampaignTask

#: ``registry_spec`` value pointing back at :data:`DST_REGISTRY`.
DST_REGISTRY_SPEC = "repro.dst.workload:DST_REGISTRY"


def _digest(experiment_id: str, **kwargs: Any) -> str:
    blob = experiment_id + "|" + "|".join(
        f"{k}={kwargs[k]!r}" for k in sorted(kwargs)
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def _run_unit_a(value: int = 0) -> Dict[str, Any]:
    return {"value": value * 2 + 1, "tag": _digest("dst-unit-a", value=value)}


def _run_unit_b(value: int = 0) -> Dict[str, Any]:
    return {"value": value * value, "tag": _digest("dst-unit-b", value=value)}


def _run_unit_c(value: int = 0) -> Dict[str, Any]:
    return {"value": 41 - value, "tag": _digest("dst-unit-c", value=value)}


_RUNNERS = {
    "dst-unit-a": _run_unit_a,
    "dst-unit-b": _run_unit_b,
    "dst-unit-c": _run_unit_c,
}

DST_REGISTRY = ExperimentRegistry()
for _eid, _fn in _RUNNERS.items():
    DST_REGISTRY.register(Experiment(
        id=_eid,
        title=f"DST unit workload {_eid[-1]}",
        paper_values={},
        run=_fn,
    ))


def expected_result(experiment_id: str, kwargs: Dict[str, Any]) -> Dict:
    """What an uncorrupted run of (*experiment_id*, *kwargs*) returns.

    Recomputed outside the scheduler/journal entirely — the ground
    truth the value-integrity invariant compares journal results to.
    """
    return _RUNNERS[experiment_id](**kwargs)


def make_tasks(n_tasks: int, seed: int) -> List[CampaignTask]:
    """*n_tasks* campaign tasks cycling over the unit experiments."""
    ids = sorted(_RUNNERS)
    return [
        CampaignTask(
            task_id=f"dst-t{i}",
            experiment_id=ids[i % len(ids)],
            kwargs={"value": i},
            seed=seed,
            registry_spec=DST_REGISTRY_SPEC,
        )
        for i in range(n_tasks)
    ]


__all__ = [
    "DST_REGISTRY",
    "DST_REGISTRY_SPEC",
    "expected_result",
    "make_tasks",
]
