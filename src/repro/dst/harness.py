"""One simulated history, end to end: run, crash, resume, audit.

``run_history(seed)`` builds a virtual world from the seed — clock,
fault schedule, workload — and drives the **real** scheduler, lease
table, journal, protection state machines, and result cache through it:

1. **Campaign segment** — the production :class:`~repro.runner.
   scheduler.Scheduler` runs the DST workload over :class:`~repro.dst.
   fabric.SimFabric` on virtual time, with the :class:`~repro.dst.
   invariants.InvariantChecker` bound as its event hook.  A torn
   journal write (site ``journal``) kills the simulated process
   mid-append; the harness restarts the scheduler with ``--resume``
   over the same journal and the same world — crash recovery inside
   the history.
2. **Convergence segment** — after the faulted campaign completes, a
   fault-free resume must finish every task (no task lost), and a
   second resume must be a pure no-op: all tasks skipped and the
   journal bytes untouched.
3. **Service segment** — the ``service``-site events drive the real
   protection pipeline (:class:`~repro.service.simtransport.
   SimGateway`); breaker transitions and response codes are audited
   against :mod:`repro.oracles.protocol`.
4. **Cache segment** — ``cache``-site events flip a byte in a stored
   result-cache artifact; the cache must quarantine, never serve it.

Everything observable is folded into :class:`HistoryResult`, including
content hashes of the journal bytes and the normalized report — the
bit-identity witnesses ``repro dst --replay`` compares.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.dst.clock import SimClock
from repro.dst.fabric import SimCrash, SimFabric, SimWorld
from repro.dst.invariants import InvariantChecker
from repro.dst.schedule import (
    FaultSchedule,
    PROFILES,
    generate_schedule,
    load_artifact,
    save_artifact,
)
from repro.dst.workload import expected_result, make_tasks
from repro.oracles.protocol import (
    breaker_transition_problems,
    gateway_response_problems,
    journal_protocol_problems,
    report_conservation_problems,
)
from repro.runner.journal import Journal, scan_journal
from repro.runner.scheduler import run_campaign
from repro.runner.supervisor import CampaignConfig, RetryPolicy

#: Hard ceiling on fabric polls per scheduler run — exceeding it means
#: the scheduler livelocked, which is itself a reportable violation.
MAX_POLLS = 60_000

#: Simulated lease TTL (virtual seconds).  Short relative to the
#: fabric's service-time envelope so stalls/partitions expire leases.
LEASE_TTL_S = 0.5


class _SimStuck(Exception):
    """The scheduler failed to make progress within the poll budget."""


class SimJournal(Journal):
    """The real journal, with schedule-addressed torn writes.

    When a ``journal``-site event is due at this append index, the
    line is written *truncated* (no newline, mid-JSON) and
    :class:`~repro.dst.fabric.SimCrash` is raised — exactly what a
    process kill between ``write()`` and completing the line leaves on
    disk.  The harness restarts the scheduler, whose resume path must
    repair and tolerate the torn tail.
    """

    def __init__(self, path: Any, world: SimWorld) -> None:
        super().__init__(path)
        self.world = world

    def append(self, entry: Dict[str, Any]) -> None:
        index = self.world.journal_appends
        self.world.journal_appends += 1
        due = self.world.schedule.fire("journal", index)
        if due:
            from repro.oracles.integrity import attach_crc

            line = json.dumps(
                attach_crc(entry), sort_keys=True, default=str
            ) + "\n"
            # Cut strictly inside the JSON so the leftover line can
            # never parse: torn means torn.
            fraction = max(0.0, min(1.0, due[0].arg))
            cut = max(1, min(len(line) - 2, int(len(line) * fraction)))
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._repair_torn_tail()
                self._handle = open(  # noqa: SIM115
                    self.path, "a", encoding="utf-8"
                )
            self._handle.write(line[:cut])
            self._handle.flush()
            self.close()
            self.world.note(
                f"torn journal write at append {index} (cut {cut} bytes)"
            )
            raise SimCrash(f"torn write at journal append {index}")
        super().append(entry)


class _BoundedFabric(SimFabric):
    """SimFabric that trips the poll ceiling instead of spinning."""

    def poll(self):  # noqa: ANN201 - matches base signature
        if self.world.polls >= MAX_POLLS:
            raise _SimStuck(
                f"scheduler made no terminal progress within "
                f"{MAX_POLLS} simulated polls"
            )
        return super().poll()


@dataclass
class HistoryResult:
    """Everything one simulated history produced."""

    seed: int
    profile: str
    violations: List[str] = field(default_factory=list)
    crashes: int = 0
    n_events: int = 0
    n_polls: int = 0
    sim_time_s: float = 0.0
    n_schedule_events: int = 0
    journal_sha: str = ""
    report_sha: str = ""
    report: Dict[str, Any] = field(default_factory=dict)
    events_log: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"seed {self.seed} [{self.profile}]: {verdict} — "
            f"{self.n_schedule_events} faults, {self.crashes} crash(es), "
            f"{self.n_polls} polls, t={self.sim_time_s:.1f}s sim"
        )


def _sha256_file(path: Path) -> str:
    if not path.exists():
        return "missing"
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _normalized_report_sha(report_dict: Dict[str, Any]) -> str:
    normalized = dict(report_dict)
    # The journal lives in a per-history scratch directory; its path is
    # host noise, its *contents* are hashed separately.
    normalized.pop("journal_path", None)
    blob = json.dumps(normalized, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _campaign_config(
    journal_path: Path,
    scratch: Path,
    clock: SimClock,
    world: SimWorld,
    checker: Optional[InvariantChecker],
    resume: bool,
) -> CampaignConfig:
    return CampaignConfig(
        workers=2,
        task_timeout_s=6.0,
        retry=RetryPolicy(max_retries=2, backoff_base_s=0.05),
        journal_path=str(journal_path),
        resume=resume,
        scratch_dir=str(scratch),
        poll_interval_s=0.05,
        oracle_mode="off",
        backend="inproc",  # nominal; the SimFabric instance is injected
        lease_ttl_s=LEASE_TTL_S,
        lease_reclaim_budget=4,
        clock=clock,
        event_hook=checker.hook if checker is not None else None,
        journal_factory=lambda path: SimJournal(path, world),
    )


def _run_campaign_segment(
    seed: int,
    schedule: FaultSchedule,
    n_tasks: int,
    journal_path: Path,
    scratch: Path,
    checker: InvariantChecker,
    world: SimWorld,
    n_executors: int,
) -> Dict[str, Any]:
    """Crash/restart loop: returns ``{report, crashes, violations}``."""
    tasks = make_tasks(n_tasks, seed=seed % 997)
    violations: List[str] = []
    crashes = 0
    report = None
    fabric = _BoundedFabric(
        _campaign_config(journal_path, scratch, world.clock, world,
                         checker, resume=False),
        world, n_executors=n_executors,
    )
    max_restarts = len(schedule) + 2
    for incarnation in range(max_restarts):
        config = _campaign_config(
            journal_path, scratch, world.clock, world, checker,
            resume=incarnation > 0,
        )
        fabric.config = config
        try:
            report = run_campaign(tasks, config, backend=fabric)
            break
        except SimCrash:
            crashes += 1
            checker.restart()
            world.note(f"process crash #{crashes}; restarting with resume")
            continue
        except _SimStuck as exc:
            violations.append(f"liveness: {exc}")
            break
    if report is None and not violations:
        violations.append(
            f"history crashed {crashes} times and never completed "
            f"within {max_restarts} restarts"
        )
    return {
        "report": report,
        "tasks": tasks,
        "crashes": crashes,
        "violations": violations,
    }


def _check_campaign(
    result: Dict[str, Any],
    journal_path: Path,
    checker: InvariantChecker,
) -> List[str]:
    """End-of-history audits over the completed campaign segment."""
    violations: List[str] = list(checker.violations)
    report = result["report"]
    if report is None:
        return violations
    tasks = result["tasks"]
    entries, torn, crc_failed = scan_journal(journal_path)
    if torn != result["crashes"]:
        violations.append(
            f"journal integrity: {torn} torn line(s) for "
            f"{result['crashes']} injected mid-write crash(es)"
        )
    if crc_failed:
        violations.append(
            f"journal integrity: {crc_failed} line(s) failed CRC without "
            f"any injected in-line corruption"
        )
    violations.extend(journal_protocol_problems(
        entries, submitted=[t.fingerprint for t in tasks],
    ))
    violations.extend(report_conservation_problems(
        report.to_dict(), len(tasks)
    ))
    # Value integrity: any accepted result must equal the pure
    # recomputation of its task — no matter which incarnation ran it.
    by_fp = {t.fingerprint: t for t in tasks}
    for entry in report.tasks:
        if entry.get("status") != "ok":
            continue
        task = by_fp.get(entry.get("fingerprint"))
        if task is None:
            continue
        expected = expected_result(task.experiment_id, task.kwargs)
        if entry.get("result") != expected:
            violations.append(
                f"value integrity: task {task.task_id} reported "
                f"{entry.get('result')!r}, expected {expected!r}"
            )
    return violations


def _check_convergence(
    result: Dict[str, Any],
    journal_path: Path,
    scratch: Path,
    world: SimWorld,
) -> List[str]:
    """Fault-free resume completes everything; a second one is a no-op."""
    if result["report"] is None:
        return []
    violations: List[str] = []
    tasks = result["tasks"]
    empty = FaultSchedule([])
    for attempt, must_skip_all in ((1, False), (2, True)):
        clock = SimClock()
        quiet = SimWorld(world.seed, empty, clock)
        config = _campaign_config(
            journal_path, scratch, clock, quiet, checker=None, resume=True,
        )
        fabric = _BoundedFabric(config, quiet, n_executors=2)
        sha_before = _sha256_file(journal_path)
        try:
            report = run_campaign(tasks, config, backend=fabric)
        except (_SimStuck, SimCrash) as exc:
            violations.append(
                f"resume convergence: fault-free resume #{attempt} "
                f"did not complete: {exc}"
            )
            return violations
        if report.counts["failed"]:
            violations.append(
                f"resume convergence: resume #{attempt} still has "
                f"{report.counts['failed']} failed task(s)"
            )
        if must_skip_all:
            if report.counts["skipped"] != len(tasks):
                violations.append(
                    f"resume convergence: resume #{attempt} re-ran work "
                    f"({report.counts}) instead of skipping all "
                    f"{len(tasks)} tasks"
                )
            if _sha256_file(journal_path) != sha_before:
                violations.append(
                    "resume convergence: a no-op resume changed the "
                    "journal bytes"
                )
    return violations


def _run_service_segment(
    seed: int, schedule: FaultSchedule, clock: SimClock,
) -> List[str]:
    """Drive the protection pipeline through the ``service`` events."""
    from repro.core.experiments import task_fingerprint
    from repro.service.simtransport import SimGateway

    import random as _random

    gateway = SimGateway()
    rng = _random.Random(f"dst-service:{seed}")
    experiments = ("dst-unit-a", "dst-unit-b", "dst-unit-c")
    fail_budget = 0
    for i in range(40):
        clock.advance(0.1)
        now = clock.monotonic()
        for event in schedule.fire("service", i):
            if event.kind == "svc-backend-fail":
                fail_budget += int(event.arg)
            elif event.kind == "svc-flood":
                flooder = f"client-flood-{i}"
                for _ in range(int(event.arg) * 4):
                    eid = rng.choice(experiments)
                    value = rng.randrange(100)
                    gateway.submit(
                        flooder, eid,
                        task_fingerprint(eid, {"value": value}, None),
                        now, kwargs={"value": value},
                    )
        client = f"client-{i % 3}"
        eid = rng.choice(experiments)
        value = rng.randrange(8)
        fingerprint = task_fingerprint(eid, {"value": value}, None)
        gateway.submit(client, eid, fingerprint, now,
                       kwargs={"value": value})
        if i % 4 == 3:
            gateway.submit(client, "no-such-experiment", "f" * 16, now)
        fail = fail_budget > 0
        if fail:
            fail_budget -= 1
        gateway.backend_turn(now, fail=fail)
        gateway.poll_job(fingerprint, now)
    problems = breaker_transition_problems(gateway.transitions)
    problems += gateway_response_problems(gateway.responses)
    # Liveness: with failures exhausted and time passing, the breaker
    # must eventually let the queue drain.
    for _ in range(200):
        if not gateway.queue:
            break
        clock.advance(0.25)
        gateway.backend_turn(clock.monotonic(), fail=False)
    if gateway.queue:
        problems.append(
            f"service liveness: {len(gateway.queue)} job(s) stuck in "
            f"queue after backend recovered"
        )
    return problems


def _run_cache_segment(
    schedule: FaultSchedule, journal_path: Path, cache_root: Path,
) -> List[str]:
    """``cache-flip`` events corrupt stored artifacts; serving must not."""
    from repro.service.resultcache import ResultCache

    entries, _torn, _crc = scan_journal(journal_path)
    winners = [
        e for e in entries
        if e.get("status") == "ok"
        and not e.get("duplicate") and not e.get("fenced")
    ]
    problems: List[str] = []
    cache = ResultCache(cache_root)
    for i, entry in enumerate(winners):
        fingerprint = entry["fingerprint"]
        try:
            path = cache.store(fingerprint, entry)
        except ValueError as exc:
            problems.append(f"cache refused a winning journal entry: {exc}")
            continue
        flips = schedule.fire("cache", i)
        if flips:
            raw = bytearray(path.read_bytes())
            if raw:
                # Deterministic single-byte corruption, mid-file.
                raw[len(raw) // 2] ^= 0x40
                path.write_bytes(bytes(raw))
            loaded, why = cache.load_verified(fingerprint)
            if loaded is not None:
                problems.append(
                    f"cache served a corrupted artifact for "
                    f"{fingerprint[:12]} (expected quarantine)"
                )
            elif not why.startswith("quarantined"):
                problems.append(
                    f"cache neither served nor quarantined corrupted "
                    f"{fingerprint[:12]}: {why!r}"
                )
        else:
            loaded, why = cache.load_verified(fingerprint)
            if loaded is None:
                problems.append(
                    f"cache failed to serve a clean artifact for "
                    f"{fingerprint[:12]}: {why!r}"
                )
    return problems


def run_history(
    seed: int,
    schedule: Optional[FaultSchedule] = None,
    profile: str = "quick",
    workdir: Optional[Union[str, Path]] = None,
    n_executors: int = 2,
) -> HistoryResult:
    """Run one complete simulated history for *seed*.

    *schedule* defaults to :func:`~repro.dst.schedule.
    generate_schedule` of the seed (pass an explicit one when
    replaying or shrinking).  *workdir* defaults to a throwaway
    temporary directory.
    """
    schedule = schedule if schedule is not None else generate_schedule(
        seed, profile, n_executors=n_executors,
    )
    schedule.reset()
    cleanup = None
    if workdir is None:
        cleanup = tempfile.mkdtemp(prefix="repro-dst-")
        workdir = cleanup
    workdir = Path(workdir)
    journal_path = workdir / "dst-journal.jsonl"
    scratch = workdir / "scratch"
    clock = SimClock()
    world = SimWorld(seed, schedule, clock)
    checker = InvariantChecker()

    result = HistoryResult(
        seed=seed, profile=profile, n_schedule_events=len(schedule),
    )
    try:
        segment = _run_campaign_segment(
            seed, schedule, PROFILES[profile]["n_tasks"],
            journal_path, scratch, checker, world, n_executors,
        )
        result.crashes = segment["crashes"]
        result.violations.extend(segment["violations"])
        result.violations.extend(
            _check_campaign(segment, journal_path, checker)
        )
        result.violations.extend(
            _check_convergence(segment, journal_path, scratch, world)
        )
        result.violations.extend(
            _run_service_segment(seed, schedule, clock)
        )
        result.violations.extend(
            _run_cache_segment(schedule, journal_path, workdir / "cache")
        )
        if segment["report"] is not None:
            result.report = segment["report"].to_dict()
            result.report_sha = _normalized_report_sha(result.report)
        result.journal_sha = _sha256_file(journal_path)
        result.n_events = len(checker.events)
        result.n_polls = world.polls
        result.sim_time_s = round(clock.now, 4)
        result.events_log = list(world.events_log)
    finally:
        if cleanup is not None:
            shutil.rmtree(cleanup, ignore_errors=True)
    return result


def explore(
    n_seeds: int,
    seed_base: int = 0,
    profile: str = "quick",
    artifact_path: Optional[Union[str, Path]] = None,
    on_history: Optional[Callable[[HistoryResult], None]] = None,
    shrink: bool = True,
) -> Dict[str, Any]:
    """Run *n_seeds* histories; shrink + save an artifact on failure.

    Stops at the first violating seed (after shrinking it) so CI fails
    fast with a minimal repro in hand.
    """
    from repro.dst.shrink import shrink_schedule

    explored = 0
    for seed in range(seed_base, seed_base + n_seeds):
        history = run_history(seed, profile=profile)
        explored += 1
        if on_history is not None:
            on_history(history)
        if history.ok:
            continue
        minimal = generate_schedule(seed, profile)
        if shrink:
            minimal, history = shrink_schedule(
                seed, minimal, profile=profile,
            )
        saved = None
        if artifact_path is not None:
            saved = str(save_artifact(
                artifact_path, seed, minimal, profile=profile,
                violations=history.violations,
            ))
        return {
            "ok": False,
            "explored": explored,
            "failing_seed": seed,
            "violations": history.violations,
            "minimal_events": len(minimal),
            "artifact": saved,
        }
    return {
        "ok": True,
        "explored": explored,
        "failing_seed": None,
        "violations": [],
        "minimal_events": 0,
        "artifact": None,
    }


def replay(
    artifact: Union[str, Path], workdir: Optional[Union[str, Path]] = None,
) -> HistoryResult:
    """Re-execute a saved ``(seed, schedule)`` artifact."""
    loaded = load_artifact(artifact)
    return run_history(
        loaded["seed"],
        schedule=loaded["schedule"],
        profile=loaded["profile"],
        workdir=workdir,
    )


__all__ = [
    "HistoryResult",
    "LEASE_TTL_S",
    "MAX_POLLS",
    "SimJournal",
    "explore",
    "replay",
    "run_history",
]
