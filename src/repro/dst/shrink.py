"""Automatic shrinking of violating fault schedules.

A randomly generated schedule that breaks an invariant usually carries
events that have nothing to do with the failure.  The shrinker reduces
it to something a human can read:

1. **Minimal failing prefix** — binary search the shortest prefix of
   the (deterministically ordered) event list that still violates.
2. **Greedy elimination** — try dropping each remaining event; keep
   the drop if the history still violates.  Loop to a fixpoint.

Both passes re-run the full history per candidate, which is affordable
precisely because the simulation runs on virtual time.  Site-addressed
fault delivery (and the site-addressed RNG underneath the injector)
guarantee that removing one event never reshuffles when the survivors
fire — without that property, shrinking would not converge.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dst.harness import HistoryResult, run_history
from repro.dst.schedule import FaultEvent, FaultSchedule


def _still_fails(
    seed: int, events: List[FaultEvent], profile: str,
) -> Optional[HistoryResult]:
    """The failing history if *events* still violate, else None."""
    history = run_history(
        seed, schedule=FaultSchedule(events), profile=profile,
    )
    return None if history.ok else history


def shrink_schedule(
    seed: int,
    schedule: FaultSchedule,
    profile: str = "quick",
    max_runs: int = 200,
) -> Tuple[FaultSchedule, HistoryResult]:
    """Minimize *schedule* while it keeps violating; returns the
    minimal schedule and its failing history.

    Raises:
        ValueError: the full schedule does not violate at all (nothing
            to shrink — the caller mixed up seeds).
    """
    events = list(FaultSchedule(schedule.events).events)  # sorted copy
    failing = _still_fails(seed, events, profile)
    if failing is None:
        raise ValueError(
            f"seed {seed}: the full schedule does not violate; "
            f"nothing to shrink"
        )
    runs = 1

    # Pass 1: shortest failing prefix, by bisection.  Invariant:
    # events[:hi] fails, events[:lo] does not.
    lo, hi = 0, len(events)
    while lo < hi - 1 and runs < max_runs:
        mid = (lo + hi) // 2
        candidate = _still_fails(seed, events[:mid], profile)
        runs += 1
        if candidate is not None:
            hi, failing = mid, candidate
        else:
            lo = mid
    events = events[:hi]

    # Pass 2: greedy single-event elimination to a fixpoint.
    changed = True
    while changed and runs < max_runs:
        changed = False
        index = 0
        while index < len(events) and runs < max_runs:
            candidate_events = events[:index] + events[index + 1:]
            candidate = _still_fails(seed, candidate_events, profile)
            runs += 1
            if candidate is not None:
                events, failing = candidate_events, candidate
                changed = True
            else:
                index += 1
    return FaultSchedule(events), failing


__all__ = ["shrink_schedule"]
