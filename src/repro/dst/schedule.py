"""Seed-derived fault schedules and their replay artifacts.

A schedule is a finite list of :class:`FaultEvent` records, each
addressed to a **site** (a named decision point in the simulated world)
and armed at a **step** (that site's own occurrence counter).  Sites
pull their due events with :meth:`FaultSchedule.fire`; an event fires
at most once per history.  Because events are addressed by
``(site, step)`` rather than drawn from a shared RNG stream, removing
one event during shrinking never reshuffles the survivors — the
property the shrinker's bisection depends on.

Sites and kinds:

========== ===================== =====================================
site       kinds                 step counts...
========== ===================== =====================================
executor   crash, crash-zombie,  scheduler-fabric polls
           stall, partition,
           flaky, hang, duplicate
clock      clock-jump            scheduler-fabric polls
journal    torn-write            journal appends (cumulative)
service    svc-backend-fail,     simulated gateway requests
           svc-flood
cache      cache-flip            result-cache stores
========== ===================== =====================================

``generate_schedule(seed, profile)`` derives everything from the seed;
``save_artifact``/``load_artifact`` round-trip a schedule through the
JSON file the shrinker emits and ``repro dst --replay`` consumes.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

ARTIFACT_VERSION = 1

#: Exploration profiles: how long a history runs and how much chaos it
#: carries.  ``quick`` is the per-PR CI profile; ``deep`` the manual
#: extended batch.
PROFILES: Dict[str, Dict[str, int]] = {
    "quick": {"n_tasks": 4, "n_events": 7, "horizon": 160},
    "deep": {"n_tasks": 6, "n_events": 14, "horizon": 400},
}

_EXECUTOR_KINDS = (
    "crash", "crash-zombie", "stall", "partition", "flaky", "hang",
    "duplicate",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fires when *site* reaches *step*.

    Attributes:
        step: The addressed site's occurrence counter value at (or
            after) which the event fires.
        site: Decision point, e.g. ``executor:1``, ``clock``,
            ``journal``, ``service``, ``cache``.
        kind: Fault kind (see module docstring).
        arg: Kind-specific magnitude — partition length in polls,
            clock-jump seconds, torn-write byte fraction.
    """

    step: int
    site: str
    kind: str
    arg: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step, "site": self.site,
            "kind": self.kind, "arg": self.arg,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(
            step=int(data["step"]),
            site=str(data["site"]),
            kind=str(data["kind"]),
            arg=float(data.get("arg", 0.0)),
        )


class FaultSchedule:
    """A fixed list of fault events with once-only firing semantics."""

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.site, e.step, e.kind, e.arg)
        )
        self._fired: set = set()

    def __len__(self) -> int:
        return len(self.events)

    def reset(self) -> None:
        """Forget firing state (a fresh history over the same events)."""
        self._fired = set()

    def fire(self, site: str, position: int) -> List[FaultEvent]:
        """Due, not-yet-fired events for *site* at occurrence *position*.

        Events armed at earlier steps that their site skipped past
        (e.g. an executor that died before reaching the step) still
        fire at the next opportunity — faults are delivered late, never
        silently dropped, so shrinking cannot hide an event by shifting
        counters.
        """
        due: List[FaultEvent] = []
        for index, event in enumerate(self.events):
            if index in self._fired or event.site != site:
                continue
            if event.step <= position:
                self._fired.add(index)
                due.append(event)
        return due

    def pending(self) -> List[FaultEvent]:
        return [
            e for i, e in enumerate(self.events) if i not in self._fired
        ]


def generate_schedule(
    seed: int, profile: str = "quick", n_executors: int = 2
) -> FaultSchedule:
    """Derive a fault schedule from *seed* alone.

    A string-keyed :class:`random.Random` (SHA-512 seeded, stable
    across processes regardless of ``PYTHONHASHSEED``) picks the event
    count, sites, kinds, steps, and magnitudes.  Same seed, same
    profile -> byte-identical schedule, which is what makes a bare seed
    number a complete repro recipe.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown DST profile {profile!r}; known: "
            + ", ".join(sorted(PROFILES))
        )
    params = PROFILES[profile]
    rng = random.Random(f"dst-schedule:{seed}:{profile}")
    horizon = params["horizon"]
    events: List[FaultEvent] = []
    for _ in range(rng.randint(max(1, params["n_events"] - 3),
                               params["n_events"])):
        roll = rng.random()
        if roll < 0.55:
            kind = rng.choice(_EXECUTOR_KINDS)
            site = f"executor:{rng.randrange(n_executors)}"
            arg = 0.0
            if kind == "partition":
                arg = float(rng.randint(3, 12))  # polls blackholed
            events.append(FaultEvent(
                step=rng.randrange(horizon), site=site, kind=kind, arg=arg,
            ))
        elif roll < 0.68:
            events.append(FaultEvent(
                step=rng.randrange(horizon), site="clock",
                kind="clock-jump", arg=round(rng.uniform(0.5, 30.0), 3),
            ))
        elif roll < 0.82:
            # Torn write at append N, cutting the line at a fraction of
            # its serialized length.
            events.append(FaultEvent(
                step=rng.randrange(2, 40), site="journal",
                kind="torn-write", arg=round(rng.uniform(0.05, 0.95), 3),
            ))
        elif roll < 0.93:
            events.append(FaultEvent(
                step=rng.randrange(30), site="service",
                kind=rng.choice(("svc-backend-fail", "svc-flood")),
                arg=float(rng.randint(1, 6)),
            ))
        else:
            events.append(FaultEvent(
                step=rng.randrange(8), site="cache", kind="cache-flip",
            ))
    return FaultSchedule(events)


def save_artifact(
    path: Union[str, Path],
    seed: int,
    schedule: FaultSchedule,
    profile: str = "quick",
    violations: Optional[Sequence[str]] = None,
) -> Path:
    """Write the replayable ``(seed, schedule)`` artifact as JSON."""
    payload = {
        "version": ARTIFACT_VERSION,
        "seed": int(seed),
        "profile": profile,
        "events": [e.to_dict() for e in schedule.events],
        "violations": list(violations or []),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Load an artifact: ``{seed, profile, schedule, violations}``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    version = data.get("version")
    if version != ARTIFACT_VERSION:
        raise ValueError(
            f"DST artifact {path} has version {version!r}; this build "
            f"replays version {ARTIFACT_VERSION}"
        )
    return {
        "seed": int(data["seed"]),
        "profile": str(data.get("profile", "quick")),
        "schedule": FaultSchedule(
            [FaultEvent.from_dict(e) for e in data.get("events", [])]
        ),
        "violations": list(data.get("violations", [])),
    }


__all__ = [
    "ARTIFACT_VERSION",
    "FaultEvent",
    "FaultSchedule",
    "PROFILES",
    "generate_schedule",
    "load_artifact",
    "save_artifact",
]
