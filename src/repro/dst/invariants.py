"""Online invariant monitor for simulated histories.

:class:`InvariantChecker.hook` is bound as the scheduler's
``event_hook``, so the safety properties are checked *after every
scheduler decision*, not just at the end of a history — a violation is
pinned to the exact event that introduced it, which is what makes the
shrinker's minimal prefix meaningful.

The checker keeps a **shadow** of the protocol state it believes the
scheduler should have (live leases, fences, accepted completions),
built only from the emitted events — never by peeking at scheduler
internals — and flags any event that contradicts it:

* a ``claim`` while the fingerprint already has a live lease
  (mutual exclusion of grants);
* a ``claim`` whose epoch is not strictly above every epoch previously
  granted for the fingerprint (fencing tokens must be monotone);
* a ``claim`` at or below the fingerprint's fence (granting behind the
  fence would bless a zombie);
* a ``completed`` (accepted ``ok``) carrying an epoch at or below the
  fence — the zombie write fencing exists to reject;
* more than one accepted ``ok`` per fingerprint (double counting).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class InvariantChecker:
    """Event-hook invariant monitor; collects violation strings."""

    def __init__(self) -> None:
        self.violations: List[str] = []
        self.events: List[Tuple[str, Dict[str, Any]]] = []
        #: fingerprint -> (executor, epoch) of the live lease.
        self.live: Dict[str, Tuple[str, int]] = {}
        self.fence: Dict[str, int] = {}
        self.max_epoch: Dict[str, int] = {}
        self.accepted_ok: Dict[str, int] = {}
        self.journal_entries: List[Dict[str, Any]] = []

    def restart(self) -> None:
        """The simulated scheduler process died and came back.

        Leases, grant counters, and fences are in-memory scheduler
        state — a crash legitimately loses them, and the restarted
        scheduler rebuilds from the journal alone.  The shadow must
        forget the same things, or it would flag the restart's fresh
        epoch-1 grants as protocol violations.  Accepted-completion
        counts persist: they shadow the *journal*, which survives.
        """
        self.live = {}
        self.max_epoch = {}
        self.fence = {}

    # -- the hook ------------------------------------------------------------

    def hook(self, kind: str, payload: Dict[str, Any]) -> None:
        self.events.append((kind, payload))
        handler = getattr(self, f"_on_{kind.replace('-', '_')}", None)
        if handler is not None:
            handler(payload)

    def _flag(self, what: str) -> None:
        self.violations.append(f"event {len(self.events)}: {what}")

    # -- event handlers ------------------------------------------------------

    def _on_claim(self, p: Dict[str, Any]) -> None:
        fp = p["fingerprint"]
        epoch = int(p["epoch"])
        short = fp[:12]
        if fp in self.live:
            holder, held_epoch = self.live[fp]
            self._flag(
                f"claim of {short} for {p['executor']!r} (epoch {epoch}) "
                f"while {holder!r} holds a live lease (epoch {held_epoch})"
            )
        if epoch <= self.max_epoch.get(fp, 0):
            self._flag(
                f"claim of {short} with epoch {epoch} not strictly above "
                f"the previous grant (epoch {self.max_epoch[fp]})"
            )
        if epoch <= self.fence.get(fp, 0):
            self._flag(
                f"claim of {short} with epoch {epoch} at or below its "
                f"fence ({self.fence[fp]})"
            )
        self.live[fp] = (p["executor"], epoch)
        self.max_epoch[fp] = max(self.max_epoch.get(fp, 0), epoch)

    def _on_reclaim(self, p: Dict[str, Any]) -> None:
        fp = p["fingerprint"]
        self.fence[fp] = max(self.fence.get(fp, 0), int(p["epoch"]))
        self.live.pop(fp, None)

    def _on_completed(self, p: Dict[str, Any]) -> None:
        fp = p["fingerprint"]
        epoch = p.get("epoch")
        if epoch is not None and int(epoch) <= self.fence.get(fp, 0):
            self._flag(
                f"accepted ok for {fp[:12]} carries epoch {epoch} at or "
                f"below its fence ({self.fence[fp]}) — zombie write counted"
            )
        self.accepted_ok[fp] = self.accepted_ok.get(fp, 0) + 1
        if self.accepted_ok[fp] > 1:
            self._flag(
                f"fingerprint {fp[:12]} accepted "
                f"{self.accepted_ok[fp]} ok completions — double counted"
            )
        self.live.pop(fp, None)

    def _release_if_holder(self, fp: str, executor: Optional[str]) -> None:
        holder = self.live.get(fp)
        if holder is not None and holder[0] == executor:
            self.live.pop(fp, None)

    def _on_failed(self, p: Dict[str, Any]) -> None:
        self._release_if_holder(p["fingerprint"], p.get("executor"))

    def _on_fenced(self, p: Dict[str, Any]) -> None:
        self._release_if_holder(p["fingerprint"], p.get("executor"))

    def _on_duplicate(self, p: Dict[str, Any]) -> None:
        self._release_if_holder(p["fingerprint"], p.get("executor"))

    def _on_strand(self, p: Dict[str, Any]) -> None:
        self.live.pop(p["fingerprint"], None)

    def _on_journal(self, p: Dict[str, Any]) -> None:
        self.journal_entries.append(p["entry"])


__all__ = ["InvariantChecker"]
