"""Virtual time for deterministic simulation.

The whole point of DST is that *nothing* in a history depends on the
host: :class:`SimClock` is a bare counter that only moves when the
simulation advances it.  ``sleep`` advances time instead of blocking,
so a scheduler poll loop that would idle for 50 ms of wall clock
consumes 50 ms of *virtual* time instantly — thousands of histories run
in seconds, and a given (seed, schedule) pair always sees the identical
sequence of timestamps.

This module deliberately never imports ``time``.
"""

from __future__ import annotations


class SimClock:
    """Discrete virtual clock: ``monotonic()``/``sleep()`` compatible.

    Drop-in for the scheduler's time source via
    ``CampaignConfig.clock``.  ``sleep`` *advances* the clock; ``jump``
    models an injected clock step (a misbehaving NTP sync) — still
    monotone, because the scheduler reads only the monotonic clock.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self.sleeps = 0

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps += 1
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("virtual time only moves forward")
        self.now += float(seconds)

    def jump(self, seconds: float) -> None:
        """An injected clock step of *seconds* (lease TTLs burn early)."""
        self.advance(seconds)


__all__ = ["SimClock"]
