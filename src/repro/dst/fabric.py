"""Deterministic in-memory executor fabric for the DST harness.

:class:`SimFabric` implements the real
:class:`~repro.runner.backends.ExecutorBackend` interface, so the
*production* scheduler drives it exactly as it drives the subprocess
backends — but every executor is an in-memory record, every task runs
through the same :func:`~repro.runner.backends.inproc.execute_assignment`
path the inproc backend uses, and *when* things happen is dictated by
the virtual clock plus the fault schedule, never by the host.

Faults the fabric realizes (addressed to site ``executor:<slot>``):

* ``crash`` — the incarnation dies, in-flight work vanishes; a new
  incarnation (``sim<slot>.g<n+1>``) comes up next poll.
* ``crash-zombie`` — the incarnation dies, but its in-flight work
  keeps running *as the dead incarnation* and delivers its outcomes
  late, carrying the (now reclaimed) lease epoch — the zombie write
  the fencing tokens exist to reject.
* ``stall`` — renewals stop forever for the current incarnation;
  outcomes keep flowing (a wedged heartbeat thread).
* ``partition`` — renewals *and* outcomes are blackholed for ``arg``
  polls, then flushed all at once (a healing network split).
* ``hang`` — the oldest in-flight task never finishes; it is
  surfaced as a ``timeout`` outcome at its wall-clock deadline.
* ``flaky`` — the next finished task reports a synthetic ``crash``
  instead of its result (exercises retry/backoff).
* ``duplicate`` — the next outcome is delivered twice (a control-plane
  retransmit; same lease epoch both times).

Site ``clock`` carries ``clock-jump`` events: the virtual clock steps
forward by ``arg`` seconds between polls, burning lease TTLs early.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.dst.clock import SimClock
from repro.dst.schedule import FaultSchedule
from repro.runner.backends import Assignment, BackendEvent, ExecutorBackend
from repro.runner.backends.inproc import execute_assignment

#: Virtual seconds one fabric poll advances the world by.
POLL_TICK_S = 0.05

#: Service-time envelope for simulated execution (virtual seconds).
#: The upper end deliberately exceeds the harness's lease TTL so that
#: stalls and partitions reliably expire leases mid-flight.
SERVICE_TIME_RANGE = (0.02, 2.5)

_NEVER = float("inf")


class SimCrash(Exception):
    """The simulated process died mid-write (torn journal append).

    Raised by the harness's :class:`~repro.dst.harness.SimJournal`;
    the harness catches it and restarts the scheduler with
    ``resume=True`` over the same journal file — a crash/recovery cycle
    inside one history.
    """


@dataclass
class _Running:
    assignment: Assignment
    executor_id: str
    finish_at: float
    deadline: float


@dataclass
class _SimExecutor:
    """One executor slot; generations model crash/restart incarnations."""

    slot: int
    generation: int = 0
    stalled: bool = False
    partition_left: int = 0
    blackholed: List[BackendEvent] = field(default_factory=list)
    running: List[_Running] = field(default_factory=list)
    flaky_next: int = 0
    duplicate_next: int = 0

    @property
    def executor_id(self) -> str:
        return f"sim{self.slot}.g{self.generation}"


class SimWorld:
    """Shared mutable state of one simulated history.

    Survives scheduler crash/restart cycles within the history: the
    clock keeps its time, the schedule keeps its fired set, and the
    occurrence counters keep counting — a restart resumes the *world*,
    not just the journal.
    """

    def __init__(
        self, seed: int, schedule: FaultSchedule, clock: SimClock,
    ) -> None:
        self.seed = seed
        self.schedule = schedule
        self.clock = clock
        self.polls = 0
        self.journal_appends = 0
        self.events_log: List[str] = []

    def note(self, what: str) -> None:
        self.events_log.append(f"[t={self.clock.now:.2f}] {what}")


class SimFabric(ExecutorBackend):
    """N simulated executors under one fault schedule."""

    def __init__(
        self, config: Any, world: SimWorld, n_executors: int = 2,
    ) -> None:
        self.name = f"sim:{n_executors}"
        self.config = config
        self.world = world
        self._executors = [_SimExecutor(slot=i) for i in range(n_executors)]
        self._zombies: List[_Running] = []
        self._alive = False

    # -- lifecycle -----------------------------------------------------------

    def start(self, scratch: Path) -> None:
        del scratch
        self._alive = True

    def stop(self) -> None:
        self._alive = False

    def executors(self) -> List[str]:
        if not self._alive:
            return []
        return [ex.executor_id for ex in self._executors]

    # -- scheduling ----------------------------------------------------------

    def _service_time(self, assignment: Assignment) -> float:
        rng = random.Random(
            f"{self.world.seed}:svc:{assignment.fingerprint}"
            f":{assignment.attempt}"
        )
        lo, hi = SERVICE_TIME_RANGE
        return rng.uniform(lo, hi)

    def try_submit(self, assignment: Assignment) -> Optional[str]:
        if not self._alive:
            return None
        # Deterministic placement: least-loaded reachable executor,
        # lowest slot breaking ties.
        candidates = [
            ex for ex in self._executors if ex.partition_left == 0
        ]
        candidates = [
            ex for ex in candidates
            if len(ex.running) < self.config.workers
        ]
        if not candidates:
            return None
        target = min(candidates, key=lambda ex: (len(ex.running), ex.slot))
        now = self.world.clock.now
        target.running.append(_Running(
            assignment=assignment,
            executor_id=target.executor_id,
            finish_at=now + self._service_time(assignment),
            deadline=now + assignment.timeout_s,
        ))
        return target.executor_id

    # -- fault realization ---------------------------------------------------

    def _apply_fault(
        self, ex: _SimExecutor, kind: str, arg: float,
    ) -> Optional[BackendEvent]:
        world = self.world
        if kind in ("crash", "crash-zombie"):
            dead = ex.executor_id
            if kind == "crash-zombie":
                # Work survives its executor's declared death and will
                # report under the dead incarnation's identity.
                self._zombies.extend(ex.running)
            world.note(f"{kind} {dead}")
            ex.running = []
            ex.blackholed = []
            ex.partition_left = 0
            ex.stalled = False
            ex.generation += 1
            return BackendEvent(
                kind="executor-dead", executor=dead,
                detail=f"{kind} (simulated)",
            )
        if kind == "stall":
            ex.stalled = True
            world.note(f"stall {ex.executor_id}")
        elif kind == "partition":
            ex.partition_left = max(ex.partition_left, int(arg))
            world.note(f"partition {ex.executor_id} for {int(arg)} polls")
        elif kind == "hang":
            if ex.running:
                ex.running[0].finish_at = _NEVER
                world.note(
                    f"hang {ex.running[0].assignment.task_id} "
                    f"on {ex.executor_id}"
                )
        elif kind == "flaky":
            ex.flaky_next += 1
            world.note(f"flaky next outcome on {ex.executor_id}")
        elif kind == "duplicate":
            ex.duplicate_next += 1
            world.note(f"duplicate next outcome on {ex.executor_id}")
        return None

    # -- outcome production --------------------------------------------------

    def _finish(self, item: _Running, ex: Optional[_SimExecutor]) -> Dict:
        outcome = execute_assignment(item.assignment)
        if ex is not None and ex.flaky_next > 0:
            ex.flaky_next -= 1
            outcome = dict(
                outcome,
                status="crash",
                error="flaky executor dropped the result (simulated)",
                error_type="WorkerCrash",
            )
            outcome.pop("result", None)
        return outcome

    @staticmethod
    def _timeout_outcome(item: _Running) -> Dict[str, Any]:
        a = item.assignment
        return dict(
            task_id=a.task_id,
            experiment_id=a.experiment_id,
            fingerprint=a.fingerprint,
            seed=a.seed,
            kwargs=dict(a.kwargs),
            attempt=a.attempt,
            elapsed_s=a.timeout_s,
            lease_epoch=a.spec.get("lease_epoch"),
            status="timeout",
            error=f"exceeded wall-clock budget of {a.timeout_s:g}s "
                  f"(simulated)",
            error_type="WorkerTimeout",
        )

    def poll(self) -> List[BackendEvent]:
        if not self._alive:
            return []
        world = self.world
        world.polls += 1
        position = world.polls
        world.clock.advance(POLL_TICK_S)

        for event in world.schedule.fire("clock", position):
            world.note(f"clock-jump +{event.arg}s")
            world.clock.jump(event.arg)

        delivered: List[BackendEvent] = []
        for ex in self._executors:
            events: List[BackendEvent] = []
            for fault in world.schedule.fire(f"executor:{ex.slot}",
                                             position):
                dead = self._apply_fault(ex, fault.kind, fault.arg)
                if dead is not None:
                    # Death notices bypass any partition buffer: the
                    # scheduler's transport notices a closed socket
                    # even when the data path is blackholed.
                    delivered.append(dead)
            if not ex.stalled:
                events.append(BackendEvent(
                    kind="renew", executor=ex.executor_id,
                ))
            now = world.clock.now
            still: List[_Running] = []
            for item in ex.running:
                outcome = None
                if now >= item.deadline:
                    outcome = self._timeout_outcome(item)
                elif now >= item.finish_at:
                    outcome = self._finish(item, ex)
                if outcome is None:
                    still.append(item)
                    continue
                copies = 1
                if ex.duplicate_next > 0:
                    ex.duplicate_next -= 1
                    copies = 2
                for _ in range(copies):
                    events.append(BackendEvent(
                        kind="outcome", executor=item.executor_id,
                        outcome=dict(outcome),
                    ))
            ex.running = still

            if ex.partition_left > 0:
                ex.blackholed.extend(events)
                ex.partition_left -= 1
                if ex.partition_left == 0:
                    world.note(f"partition heals on {ex.executor_id}")
                    delivered.extend(ex.blackholed)
                    ex.blackholed = []
            else:
                delivered.extend(events)

        # Zombie work: completes under a dead incarnation's identity,
        # carrying the lease epoch the scheduler has since fenced.
        now = world.clock.now
        still_z: List[_Running] = []
        for item in self._zombies:
            if now >= item.finish_at and item.finish_at != _NEVER:
                world.note(
                    f"zombie outcome {item.assignment.task_id} "
                    f"from {item.executor_id}"
                )
                delivered.append(BackendEvent(
                    kind="outcome", executor=item.executor_id,
                    outcome=self._finish(item, None),
                ))
            elif now < item.deadline:
                still_z.append(item)
        self._zombies = still_z
        return delivered


__all__ = [
    "POLL_TICK_S",
    "SERVICE_TIME_RANGE",
    "SimCrash",
    "SimFabric",
    "SimWorld",
]
